package sparse

import (
	"fmt"
	"math"
)

// CGLSResult reports a conjugate-gradient least-squares solve.
type CGLSResult struct {
	// X is the least-squares solution estimate.
	X []float64
	// Iterations is the number of CG steps taken.
	Iterations int
	// ResidualNorm is ‖Aᵀ(b − A·x)‖₂ at termination (the least-squares
	// optimality residual).
	ResidualNorm float64
	// Converged reports whether the tolerance was met before the
	// iteration cap.
	Converged bool
}

// CGLS solves the least-squares problem min_x ‖A·x − b‖₂ for a sparse A
// by conjugate gradients on the normal equations (the CGLS variant, which
// avoids forming AᵀA and is numerically preferable to naive CG on AᵀA).
//
// Cost per iteration is two sparse mat-vecs, so the whole solve is
// O(iters·nnz): this is what makes least-squares inference practical for
// the O(n log n)-sized hierarchical and wavelet strategy matrices, where
// a dense QR would cost O(n³).
//
// tol is the relative tolerance on ‖Aᵀr‖; 0 means 1e-10. maxIter ≤ 0
// means 2·cols.
func CGLS(a *CSR, b []float64, maxIter int, tol float64) (*CGLSResult, error) {
	m, n := a.Dims()
	if len(b) != m {
		return nil, fmt.Errorf("sparse: CGLS rhs length %d != rows %d", len(b), m)
	}
	if maxIter <= 0 {
		maxIter = 2 * n
	}
	if tol == 0 {
		tol = 1e-10
	}
	x := make([]float64, n)
	r := make([]float64, m) // r = b − A·x; x = 0 initially
	copy(r, b)
	s := a.MulVecT(r) // s = Aᵀr
	p := make([]float64, n)
	copy(p, s)
	gamma := dot(s, s)
	norm0 := math.Sqrt(gamma)
	if norm0 == 0 {
		return &CGLSResult{X: x, Converged: true}, nil
	}
	res := &CGLSResult{X: x}
	for iter := 0; iter < maxIter; iter++ {
		q := a.MulVec(p)
		qq := dot(q, q)
		if qq == 0 {
			break
		}
		alpha := gamma / qq
		for i := range x {
			x[i] += alpha * p[i]
		}
		for i := range r {
			r[i] -= alpha * q[i]
		}
		s = a.MulVecT(r)
		gammaNew := dot(s, s)
		res.Iterations = iter + 1
		res.ResidualNorm = math.Sqrt(gammaNew)
		if res.ResidualNorm <= tol*norm0 {
			res.Converged = true
			break
		}
		beta := gammaNew / gamma
		for i := range p {
			p[i] = s[i] + beta*p[i]
		}
		gamma = gammaNew
	}
	res.X = x
	return res, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
