package lrm

import (
	"lrm/internal/compress"
	"lrm/internal/core"
	"lrm/internal/dataset"
	"lrm/internal/engine"
	"lrm/internal/hist"
	"lrm/internal/infer"
	"lrm/internal/mat"
	"lrm/internal/mechanism"
	"lrm/internal/metrics"
	"lrm/internal/plan"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/sparse"
	"lrm/internal/workload"
)

// The root package is a facade: it aliases the library's internal types
// so downstream users get one import path ("lrm") with a compact surface,
// while the implementation stays factored into internal/ subsystems.

// Matrix is a dense row-major matrix (see NewMatrix, MatrixFromRows).
type Matrix = mat.Dense

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix { return mat.New(r, c) }

// MatrixFromRows builds a matrix from rows, copying them.
func MatrixFromRows(rows [][]float64) *Matrix { return mat.FromRows(rows) }

// Workload is a batch of linear counting queries (its W field is m×n).
type Workload = workload.Workload

// Workload generators (the paper's three synthetic families plus common
// extras).
var (
	DiscreteWorkload    = workload.Discrete
	RangeWorkload       = workload.Range
	RelatedWorkload     = workload.Related
	IdentityWorkload    = workload.Identity
	PrefixWorkload      = workload.Prefix
	MarginalWorkload    = workload.Marginal
	TotalWorkload       = workload.Total
	WorkloadFromMatrix  = workload.FromMatrix
	Range2DWorkload     = workload.Range2D
	KronWorkload        = workload.Kron
	PermutationWorkload = workload.PermutationWorkload
)

// WorkloadSpec is an implicit workload: the structural description of a
// query batch (prefix sums, range queries, marginals, Kronecker
// products) exposing answers, Gram products, sensitivity, and a stable
// digest WITHOUT ever materializing the m×n matrix. Specs flow through
// the same pipeline as dense workloads — AnalyzeSpec, PlanSpec,
// EngineRequest.Spec — so a 2²⁰×2²⁰ product plans and answers in
// megabytes, not terabytes. A dense Workload adapts into the spec world
// via AsWorkloadSpec; that adapter is also the migration path for any
// call site that still builds matrices.
type WorkloadSpec = workload.Spec

// Implicit workload constructors. NewKronSpec composes any specs —
// including dense adapters — into their Kronecker product.
var (
	NewPrefixSpec    = workload.NewPrefixSpec
	NewAllRangesSpec = workload.NewAllRangesSpec
	NewIdentitySpec  = workload.NewIdentitySpec
	NewTotalSpec     = workload.NewTotalSpec
	NewKronSpec      = workload.NewKronSpec
	NewMarginalSpec  = workload.NewMarginalSpec
)

// AsWorkloadSpec wraps a dense Workload as a WorkloadSpec (the adapter
// direction); MaterializeSpec converts the other way, refusing to build
// more than maxCells matrix cells.
var (
	AsWorkloadSpec  = workload.AsSpec
	MaterializeSpec = workload.MaterializeSpec
)

// ParseWorkloadSpec parses the compact spec grammar shared by the CLIs:
// "prefix(1024)", "ranges(256)", "marginals(2,2,2,2;k=2)", and
// Kronecker products like "kron:prefix(1024)xprefix(1024)".
var ParseWorkloadSpec = workload.ParseSpec

// SpecFingerprint is the engine cache key for an implicit workload
// ("spec-" + the spec's digest, disjoint from dense fingerprints).
var SpecFingerprint = workload.SpecFingerprint

// AnalyzeWorkload summarizes the properties that decide which mechanism
// will serve a workload well (rank, sensitivity, baseline comparison).
var AnalyzeWorkload = workload.Analyze

// AnalyzeSpec computes the same Stats from a spec's structure alone:
// closed-form spectra where they exist (prefix, ranges, marginals),
// factor products for Kronecker specs, and a matrix-free Lanczos
// estimate otherwise.
var AnalyzeSpec = workload.AnalyzeSpec

// WorkloadStats is the summary returned by AnalyzeWorkload.
type WorkloadStats = workload.Stats

// Dataset is a histogram of unit counts.
type Dataset = dataset.Dataset

// Synthetic stand-ins for the paper's evaluation datasets.
var (
	SearchLogs    = dataset.SearchLogs
	NetTrace      = dataset.NetTrace
	SocialNetwork = dataset.SocialNetwork
	DatasetByName = dataset.ByName
)

// Epsilon is a differential-privacy budget.
type Epsilon = privacy.Epsilon

// Budget tracks sequential composition of privacy spends.
type Budget = privacy.Budget

// NewBudget returns a budget with the given total ε.
var NewBudget = privacy.NewBudget

// Source is a seeded random source; all mechanisms take one explicitly so
// releases are reproducible.
type Source = rng.Source

// NewSource returns a Source seeded with seed.
func NewSource(seed int64) *Source { return rng.New(seed) }

// DecomposeOptions configures the workload decomposition; the zero value
// is the paper's defaults (r = 1.2·rank(W), γ = 1e-4·‖W‖_F).
type DecomposeOptions = core.Options

// Decomposition is the optimized factorization W ≈ B·L.
type Decomposition = core.Decomposition

// Decompose runs the ALM workload decomposition (Algorithm 1).
var Decompose = core.Decompose

// TuneRank sweeps the inner dimension r over multiples of rank(W) and
// returns the best rank (the programmatic form of the paper's Figure 3
// guidance).
var TuneRank = core.TuneRank

// RankTrial reports one candidate rank from TuneRank.
type RankTrial = core.RankTrial

// ReadDecomposition restores a decomposition persisted with
// (*Decomposition).Encode, so the one-off optimization can be reused
// across processes.
var ReadDecomposition = core.ReadDecomposition

// NewLRMMechanism wraps a decomposition as a query-answering mechanism
// (Eq. 6 of the paper).
var NewLRMMechanism = core.NewMechanism

// Bounds carries the paper's optimality certificates (Lemmas 3–4,
// Theorem 2) for a workload.
type Bounds = core.Bounds

// AnalyzeBounds computes error upper/lower bounds for a workload matrix.
var AnalyzeBounds = core.AnalyzeBounds

// Mechanism is the shared interface of all query-answering mechanisms.
type Mechanism = mechanism.Mechanism

// Prepared is a mechanism bound to one workload, ready to answer.
type Prepared = mechanism.Prepared

// BatchAnswerer is the optional multi-RHS extension of Prepared: answer
// B histograms (the columns of an n×B matrix) in one call, bit-identical
// to looping Answer but computed as packed multi-RHS GEMMs.
type BatchAnswerer = mechanism.BatchAnswerer

// AnswerMany answers every column of an n×B data matrix through p,
// using its native multi-RHS path when it has one and a per-column loop
// otherwise. The result is m×B, releases as columns.
var AnswerMany = mechanism.AnswerMany

// The mechanisms evaluated in the paper.
type (
	// LRM is the Low-Rank Mechanism (the paper's contribution).
	LRM = mechanism.LRM
	// LaplaceData is LM: Laplace noise on the unit counts.
	LaplaceData = mechanism.LaplaceData
	// LaplaceResults is NOR: Laplace noise on the query answers.
	LaplaceResults = mechanism.LaplaceResults
	// Wavelet is WM: the Privelet wavelet mechanism.
	Wavelet = mechanism.Wavelet
	// Hierarchical is HM: the Boost tree mechanism with consistency.
	Hierarchical = mechanism.Hierarchical
	// MatrixMechanism is MM: Li et al.'s mechanism, Appendix-B form.
	MatrixMechanism = mechanism.MatrixMechanism
)

// Mechanisms from the paper's related and future work, implemented as
// extensions (see DESIGN.md §Extensions).
type (
	// Fourier is FPA: the Fourier perturbation algorithm of Rastogi and
	// Nath (the paper's reference [24]).
	Fourier = mechanism.Fourier
	// Compressive is CM: the compressive mechanism of Li et al. (the
	// paper's reference [17]).
	Compressive = mechanism.Compressive
	// Histogram is NF/SF: the bucketized DP histograms of Xu et al. (the
	// paper's reference [29]).
	Histogram = mechanism.Histogram
	// Consistent wraps any mechanism with a free consistency projection
	// onto the workload's column space.
	Consistent = mechanism.Consistent
)

// Histogram-publication primitives underlying the Histogram mechanism.
var (
	// VOptimalHistogram computes the exact B-bucket v-optimal histogram.
	VOptimalHistogram = hist.VOptimal
	// NoiseFirstHistogram publishes an ε-DP histogram, noise before
	// structure.
	NoiseFirstHistogram = hist.NoiseFirst
	// StructureFirstHistogram publishes an ε-DP histogram, structure
	// before noise.
	StructureFirstHistogram = hist.StructureFirst
)

// StructureFirstOptions configures StructureFirstHistogram.
type StructureFirstOptions = hist.StructureFirstOptions

// CompressiveSynopsis is the reusable measurement/reconstruction pipeline
// underlying the Compressive mechanism.
type CompressiveSynopsis = compress.Synopsis

// NewCompressiveSynopsis builds a synopsis for a power-of-two domain.
var NewCompressiveSynopsis = compress.NewSynopsis

// Post-processing utilities (free under DP; they only reduce error).
var (
	// LeastSquaresEstimate recovers a histogram from noisy strategy
	// observations.
	LeastSquaresEstimate = infer.LeastSquaresEstimate
	// NewProjector builds a consistency projector onto col(W).
	NewProjector = infer.NewProjector
	// NonNegative clamps negative counts to zero.
	NonNegative = infer.NonNegative
	// RoundCounts rounds to the nearest non-negative integers.
	RoundCounts = infer.RoundCounts
)

// Additional ε-DP primitives beyond the batch-query mechanisms.
var (
	// ExponentialMechanism selects from scored candidates under ε-DP.
	ExponentialMechanism = privacy.ExponentialMechanism
	// GeometricMechanism adds two-sided geometric noise to an integer.
	GeometricMechanism = privacy.GeometricMechanism
	// GaussianMechanism adds (ε,δ)-DP Gaussian noise.
	GaussianMechanism = privacy.GaussianMechanism
	// AdvancedComposition accounts k-fold composition tightly.
	AdvancedComposition = privacy.AdvancedComposition
	// Sensitivity computes the L1 sensitivity of a query matrix.
	Sensitivity = privacy.Sensitivity
	// NewSparseVector starts a sparse-vector-technique run.
	NewSparseVector = privacy.NewSparseVector
)

// SparseVector is the sparse vector technique: threshold queries that pay
// budget only for positive answers.
type SparseVector = privacy.SparseVector

// RDPAccountant composes Gaussian/Laplace releases in Rényi DP and
// converts to (ε, δ); far tighter than naive composition for iterative
// releases.
type RDPAccountant = privacy.RDPAccountant

var (
	// NewRDPAccountant starts an empty Rényi-DP accountant.
	NewRDPAccountant = privacy.NewRDPAccountant
	// GaussianSigmaForBudget calibrates the noise multiplier for k
	// composed Gaussian releases under an (ε, δ) budget.
	GaussianSigmaForBudget = privacy.GaussianSigmaForBudget
	// RandomizedResponse releases one bit under local ε-DP.
	RandomizedResponse = privacy.RandomizedResponse
)

// EvaluateDistribution measures a mechanism's full per-trial error
// distribution (mean, CI, order statistics, per-query errors).
var EvaluateDistribution = metrics.EvaluateDistribution

// ErrorDistribution summarizes per-trial squared errors with error bars.
type ErrorDistribution = metrics.Distribution

// Explicit strategy-matrix constructors (the dense equivalents of the
// wavelet and hierarchical mechanisms).
var (
	HaarStrategy = mechanism.HaarStrategy
	TreeStrategy = mechanism.TreeStrategy
)

// NewStrategyMechanism answers a workload through an arbitrary strategy
// matrix A (the matrix-mechanism template).
var NewStrategyMechanism = mechanism.NewStrategyPrepared

// NewSparseStrategyMechanism is the scalable variant for structurally
// sparse strategies (tree/wavelet): CSR mat-vecs plus iterative CGLS
// inference instead of a dense pseudo-inverse.
var NewSparseStrategyMechanism = mechanism.NewSparseStrategyPrepared

// SparseMatrix is a compressed-sparse-row matrix (see SparseFromDense).
type SparseMatrix = sparse.CSR

// SparseFromDense converts a dense matrix to CSR, dropping |v| ≤ tol.
var SparseFromDense = sparse.FromDense

// Measurement reports a mechanism's measured accuracy and timing.
type Measurement = metrics.Measurement

// Evaluate measures a mechanism's average squared error on a workload by
// Monte Carlo, as in the paper's experiments.
var Evaluate = metrics.Evaluate

// Engine is the serving layer: a long-lived, goroutine-safe answering
// service that caches prepared workloads (LRU + singleflight), persists
// LRM decompositions to a cache directory, answers histogram batches
// through the mechanism's multi-RHS path (or a bounded worker-pool
// fan-out) with per-request budget accounting, and can row-shard
// oversized workloads (EngineOptions.ShardRows) with ε split across
// shards by sequential composition. With EngineOptions.Planner set it
// plans each workload adaptively (see Plan) and caches the decisions
// alongside the preparations. See internal/engine for the full
// semantics and cmd/lrmserve for the HTTP front end.
type Engine = engine.Engine

// EngineOptions configures NewEngine; the zero value serves the LRM with
// an in-memory cache.
type EngineOptions = engine.Options

// EngineRequest is one Engine.Answer call: a workload, histograms, and
// the release's privacy parameters.
type EngineRequest = engine.Request

// EngineStats is the counter snapshot returned by Engine.Stats.
type EngineStats = engine.Stats

// NewEngine starts an answering engine. Close it to stop its workers.
var NewEngine = engine.New

// WorkloadFingerprint returns the content hash the engine keys caches by
// (hex SHA-256 over the matrix dimensions and data).
func WorkloadFingerprint(w *Workload) string { return core.Fingerprint(w.W) }

// WorkloadPlan is an executable answering plan for one workload: the
// mechanism the planner chose, its tuned parameters, every candidate's
// score, and a human-readable Explain(). Build with Plan or AutoPrepare.
type WorkloadPlan = plan.Plan

// PlanOptions configures Plan/AutoPrepare; the zero value scores the
// default candidate set (lrm, lm, nor) at ε = 1.
type PlanOptions = plan.Options

// PlanCandidate is one scored (or skipped) mechanism of a WorkloadPlan.
type PlanCandidate = plan.Candidate

// Plan analyzes w (one factorization) and plans it: candidate mechanisms
// are scored by their analytic ExpectedSSE closed forms (empirical probe
// when none exists), the paper's regime rules gate the expensive LRM
// candidate to low-rank workloads, and the winner — already prepared,
// via the shared analysis — is retained on the plan.
func Plan(w *Workload, opts PlanOptions) (*WorkloadPlan, error) { return plan.New(w, opts) }

// AutoPrepare plans w and returns the winning mechanism's Prepared
// alongside the plan that chose it — the adaptive form of Prepare, at
// the cost of exactly one factorization of W end to end.
var AutoPrepare = plan.AutoPrepare

// PlanSpec plans an implicit workload from its structure alone: scores
// come from the spec's closed forms, an LRM winner decomposes per
// Kronecker factor (never the assembled product), and the plan records
// the spec descriptor for auditable round trips.
func PlanSpec(s WorkloadSpec, opts PlanOptions) (*WorkloadPlan, error) { return plan.NewSpec(s, opts) }

// AutoPrepareSpec is AutoPrepare for implicit workloads.
var AutoPrepareSpec = plan.AutoPrepareSpec

// PlanDecision is one resident plan decision surfaced by a plan-aware
// Engine's Decisions().
type PlanDecision = engine.PlanDecision

// AnswerBatch is the one-call happy path: decompose the workload with
// default options and answer it on x under ε-differential privacy using
// the Low-Rank Mechanism.
//
//lrm:source x — the histogram arrives raw
//lrm:sink return — the returned answers leave the privacy boundary
func AnswerBatch(w *Workload, x []float64, eps Epsilon, src *Source) ([]float64, error) {
	p, err := LRM{}.Prepare(w)
	if err != nil {
		return nil, err
	}
	return p.Answer(x, eps, src)
}
