// Command datagen emits the synthetic stand-ins for the paper's three
// evaluation datasets as CSV.
//
// Usage:
//
//	datagen -dataset searchlogs -out searchlogs.csv
//	datagen -dataset nettrace -size 4096 -seed 7 -out -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lrm/internal/dataset"
	"lrm/internal/rng"
)

func main() {
	var (
		name = flag.String("dataset", "searchlogs", "searchlogs, nettrace or socialnetwork")
		size = flag.Int("size", 0, "override the paper cardinality")
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("out", "-", "output file ('-' for stdout)")
		desc = flag.Bool("describe", false, "print summary statistics (shape, concentration, roughness) instead of CSV")
	)
	flag.Parse()

	src := rng.New(*seed)
	var d *dataset.Dataset
	switch *name {
	case "searchlogs":
		d = dataset.SearchLogs(sizeOr(*size, dataset.SearchLogsSize), src)
	case "nettrace":
		d = dataset.NetTrace(sizeOr(*size, dataset.NetTraceSize), src)
	case "socialnetwork":
		d = dataset.SocialNetwork(sizeOr(*size, dataset.SocialNetworkSize), src)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *name)
		os.Exit(1)
	}

	if *desc {
		stats, err := d.Summarize()
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(stats.Describe(d.Name))
		return
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := d.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func sizeOr(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}
