package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lrm/internal/core"
	"lrm/internal/engine"
	"lrm/internal/mechanism"
)

func newCoalescingServer(t *testing.T, window time.Duration, max int) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng, err := engine.New(engine.Options{
		Mechanism: mechanism.LRM{Options: core.Options{MaxOuterIter: 5, MaxInnerIter: 2, MaxNesterovIter: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(eng, handlerConfig{mech: "LRM", maxBody: 1 << 20, co: newCoalescer(eng, window, max)}))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv, eng
}

// coalesceTestRequest is the shared workload the coalescing tests post.
func coalesceTestRequest(hist []float64) answerRequest {
	return answerRequest{
		Workload:   [][]float64{{1, 0, 0}, {1, 1, 0}, {1, 1, 1}},
		Histograms: [][]float64{hist},
		Eps:        0.5,
	}
}

// TestCoalesceMergesConcurrentRequests: N concurrent unseeded requests
// for one workload inside the window must collapse into fewer engine
// requests (here: exactly one), with every caller getting its own
// correctly shaped rows.
func TestCoalesceMergesConcurrentRequests(t *testing.T) {
	srv, eng := newCoalescingServer(t, 200*time.Millisecond, 64)
	// Warm the cache so the window isn't consumed by the decomposition.
	if resp, body := postAnswer(t, srv.URL, coalesceTestRequest([]float64{1, 2, 3})); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d: %s", resp.StatusCode, body)
	}
	before := eng.Stats()

	const clients = 5
	var wg sync.WaitGroup
	shapes := make([]int, clients)
	codes := make([]int, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, body := postAnswer(t, srv.URL, coalesceTestRequest([]float64{float64(c), 1, 1}))
			codes[c] = resp.StatusCode
			var out answerResponse
			if err := json.Unmarshal(body, &out); err != nil {
				return
			}
			if len(out.Answers) == 1 {
				shapes[c] = len(out.Answers[0])
			}
		}(c)
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		if codes[c] != http.StatusOK {
			t.Fatalf("client %d: status %d", c, codes[c])
		}
		if shapes[c] != 3 {
			t.Fatalf("client %d: got answer shape %d, want 3 queries", c, shapes[c])
		}
	}
	after := eng.Stats()
	if got := after.Requests - before.Requests; got != 1 {
		t.Fatalf("%d clients became %d engine requests, want 1 coalesced batch", clients, got)
	}
	if after.Answers-before.Answers != clients {
		t.Fatalf("answers delta %d, want %d", after.Answers-before.Answers, clients)
	}
}

// TestCoalesceSizeCapFlushesEarly: a group that reaches -coalesce-max
// must flush without waiting out the window (the window here is far
// longer than the test timeout would tolerate).
func TestCoalesceSizeCapFlushesEarly(t *testing.T) {
	srv, eng := newCoalescingServer(t, 30*time.Second, 2)
	done := make(chan int, 2)
	for c := 0; c < 2; c++ {
		go func(c int) {
			resp, _ := postAnswer(t, srv.URL, coalesceTestRequest([]float64{float64(c), 0, 0}))
			done <- resp.StatusCode
		}(c)
	}
	for i := 0; i < 2; i++ {
		select {
		case code := <-done:
			if code != http.StatusOK {
				t.Fatalf("status %d", code)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("size-capped group did not flush before the window")
		}
	}
	if st := eng.Stats(); st.Requests != 1 {
		t.Fatalf("stats = %+v, want the pair merged into 1 engine request", st)
	}
}

// TestCoalesceBypassesSeededAndBudgeted: pinned-seed or budgeted requests
// carry per-request semantics and must go straight to the engine even
// with coalescing on.
func TestCoalesceBypassesSeededAndBudgeted(t *testing.T) {
	srv, eng := newCoalescingServer(t, 30*time.Second, 64)
	seeded := coalesceTestRequest([]float64{1, 2, 3})
	seeded.Seed = 7
	if resp, body := postAnswer(t, srv.URL, seeded); resp.StatusCode != http.StatusOK {
		t.Fatalf("seeded status %d: %s", resp.StatusCode, body)
	}
	budgeted := coalesceTestRequest([]float64{1, 2, 3})
	budgeted.Budget = 0.5
	if resp, body := postAnswer(t, srv.URL, budgeted); resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted status %d: %s", resp.StatusCode, body)
	}
	if st := eng.Stats(); st.Requests != 2 {
		t.Fatalf("stats = %+v, want both bypass requests served individually", st)
	}
}

// TestCoalesceRejectsBadHistogramBeforeMerging: a malformed histogram
// must be rejected at the door (400) rather than poisoning a merged
// batch.
func TestCoalesceRejectsBadHistogramBeforeMerging(t *testing.T) {
	srv, eng := newCoalescingServer(t, 50*time.Millisecond, 64)
	bad := coalesceTestRequest([]float64{1, 2}) // domain is 3
	if resp, _ := postAnswer(t, srv.URL, bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short histogram: status %d, want 400", resp.StatusCode)
	}
	empty := coalesceTestRequest(nil)
	empty.Histograms = nil
	if resp, _ := postAnswer(t, srv.URL, empty); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
	if st := eng.Stats(); st.Requests != 0 {
		t.Fatalf("stats = %+v, want no engine requests for rejected bodies", st)
	}
}
