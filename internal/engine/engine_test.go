package engine

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"lrm/internal/core"
	"lrm/internal/faultfs"
	"lrm/internal/mat"
	"lrm/internal/mechanism"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// fastOpts keeps the decomposition cheap so tests exercise the serving
// machinery, not the optimizer.
func fastOpts() core.Options {
	return core.Options{MaxOuterIter: 5, MaxInnerIter: 2, MaxNesterovIter: 5}
}

func testWorkload(seed int64) *workload.Workload {
	return workload.Related(12, 16, 3, rng.New(seed))
}

func testHistogram(n int, seed int64) []float64 {
	return rng.New(seed).UniformVec(n, 0, 50)
}

func newTestEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	if opts.Mechanism == nil {
		opts.Mechanism = mechanism.LRM{Options: fastOpts()}
	}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestSingleflight: N concurrent first requests for one workload must run
// Prepare exactly once, counted via the hook; the rest coalesce.
func TestSingleflight(t *testing.T) {
	var prepares atomic.Int64
	e := newTestEngine(t, Options{
		PrepareHook: func(string) { prepares.Add(1) },
	})
	w := testWorkload(1)
	x := testHistogram(w.Domain(), 2)
	const clients = 16
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, errs[c] = e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 0.5, Seed: int64(c)})
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	if got := prepares.Load(); got != 1 {
		t.Fatalf("%d concurrent first requests ran Prepare %d times, want exactly 1", clients, got)
	}
	st := e.Stats()
	if st.Prepares != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly one miss and one prepare", st)
	}
	if st.Hits+st.Coalesced != clients-1 {
		t.Fatalf("stats = %+v: %d requests should have hit or coalesced", st, clients-1)
	}
}

// TestLRUEviction pins the eviction order: with capacity 2, answering
// workloads A, B, A, C must evict B (least recently used), so B — and
// only B — prepares again.
func TestLRUEviction(t *testing.T) {
	perFP := make(map[string]int)
	var mu sync.Mutex
	e := newTestEngine(t, Options{
		CacheSize: 2,
		PrepareHook: func(fp string) {
			mu.Lock()
			perFP[fp]++
			mu.Unlock()
		},
	})
	a, b, c := testWorkload(10), testWorkload(11), testWorkload(12)
	fpA := core.Fingerprint(a.W)
	fpB := core.Fingerprint(b.W)
	fpC := core.Fingerprint(c.W)
	for _, w := range []*workload.Workload{a, b, a, c} {
		x := testHistogram(w.Domain(), 3)
		if _, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.Evictions != 1 || st.Cached != 2 {
		t.Fatalf("stats = %+v, want 1 eviction and 2 resident", st)
	}
	// A was freshened by its second answer, so C's arrival evicts B.
	for _, w := range []*workload.Workload{a, b} {
		x := testHistogram(w.Domain(), 4)
		if _, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 1}); err != nil {
			t.Fatal(err)
		}
	}
	want := map[string]int{fpA: 1, fpB: 2, fpC: 1}
	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(perFP, want) {
		t.Fatalf("prepare counts per fingerprint = %v, want %v (B evicted, A retained)", perFP, want)
	}
}

// TestDiskCacheRoundTrip: a second engine sharing the cache directory
// must restore the decomposition from disk (no Prepare) and produce
// bit-for-bit the answers of the in-memory engine at the same seed.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := testWorkload(20)
	x := testHistogram(w.Domain(), 21)
	req := Request{Workload: w, Histograms: [][]float64{x}, Eps: 0.7, Seed: 99}

	var prepares1 atomic.Int64
	e1 := newTestEngine(t, Options{CacheDir: dir, PrepareHook: func(string) { prepares1.Add(1) }})
	got1, err := e1.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := e1.Stats(); st.DiskWrites != 1 {
		t.Fatalf("stats = %+v, want one disk write", st)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.lrmd"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache dir files = %v (err %v), want one .lrmd", files, err)
	}
	if want := e1.diskPath(core.Fingerprint(w.W)); files[0] != want {
		t.Fatalf("cache file %q, want fingerprint-named %q", files[0], want)
	}

	var prepares2 atomic.Int64
	e2 := newTestEngine(t, Options{CacheDir: dir, PrepareHook: func(string) { prepares2.Add(1) }})
	got2, err := e2.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if prepares2.Load() != 0 {
		t.Fatalf("second engine ran Prepare %d times despite disk cache", prepares2.Load())
	}
	if st := e2.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want one disk hit", st)
	}
	if !reflect.DeepEqual(got1, got2) {
		t.Fatal("disk-restored decomposition answers differ from in-memory result")
	}
}

// TestDiskCacheCorruptFile: a poisoned cache file must not take down
// serving — the engine falls back to a fresh Prepare and overwrites it.
func TestDiskCacheCorruptFile(t *testing.T) {
	dir := t.TempDir()
	w := testWorkload(30)
	var prepares atomic.Int64
	e := newTestEngine(t, Options{CacheDir: dir, PrepareHook: func(string) { prepares.Add(1) }})
	path := e.diskPath(core.Fingerprint(w.W))
	if err := os.WriteFile(path, []byte("not a decomposition"), 0o644); err != nil {
		t.Fatal(err)
	}
	x := testHistogram(w.Domain(), 31)
	if _, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 1}); err != nil {
		t.Fatal(err)
	}
	if prepares.Load() != 1 {
		t.Fatalf("corrupt cache file: Prepare ran %d times, want 1", prepares.Load())
	}
	if st := e.Stats(); st.DiskHits != 0 || st.DiskWrites != 1 {
		t.Fatalf("stats = %+v, want no disk hit and one rewrite", st)
	}
	// The rewritten file must now load.
	if _, err := loadPrepared(faultfs.Disk, path, w, 0); err != nil {
		t.Fatalf("rewritten cache file does not load: %v", err)
	}
}

// TestDiskCacheForgedFile: a well-formed .lrmd whose factors do NOT
// multiply back to W (here: zeroed, with metadata forged to match) must
// be rejected — shape and finiteness checks alone would accept it and
// silently serve garbage forever.
func TestDiskCacheForgedFile(t *testing.T) {
	dir := t.TempDir()
	w := testWorkload(35)
	var prepares atomic.Int64
	e := newTestEngine(t, Options{CacheDir: dir, PrepareHook: func(string) { prepares.Add(1) }})
	forged := &core.Decomposition{
		B:        mat.New(w.Queries(), 3),
		L:        mat.New(3, w.Domain()),
		Residual: math.Sqrt(mat.SquaredSum(w.W)), // "honest" residual of a zero factorization
	}
	var buf bytes.Buffer
	if err := forged.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	path := e.diskPath(core.Fingerprint(w.W))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	x := testHistogram(w.Domain(), 36)
	out, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 1, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	if prepares.Load() != 1 {
		t.Fatalf("forged cache file accepted: Prepare ran %d times, want 1", prepares.Load())
	}
	allZero := true
	for _, v := range out[0] {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("answers are the forged zero factorization's output")
	}
}

// TestConcurrentAnswers hammers one engine from many goroutines over a
// mix of workloads; meaningful mainly under -race.
func TestConcurrentAnswers(t *testing.T) {
	e := newTestEngine(t, Options{CacheSize: 2, Workers: 4})
	ws := []*workload.Workload{testWorkload(40), testWorkload(41), testWorkload(42)}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				w := ws[(g+i)%len(ws)]
				xs := [][]float64{
					testHistogram(w.Domain(), int64(g)),
					testHistogram(w.Domain(), int64(i)),
					testHistogram(w.Domain(), int64(g+i)),
				}
				out, err := e.Answer(Request{Workload: w, Histograms: xs, Eps: 0.2, Seed: int64(g*100 + i)})
				if err != nil {
					t.Error(err)
					return
				}
				if len(out) != len(xs) || len(out[0]) != w.Queries() {
					t.Errorf("answer shape %d×%d, want %d×%d", len(out), len(out[0]), len(xs), w.Queries())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := e.Stats(); st.Answers != 8*10*3 {
		t.Fatalf("stats = %+v, want %d answers", st, 8*10*3)
	}
}

// TestRequestBudget: the per-request budget caps sequential composition
// across the batch, and concurrent workers cannot jointly overspend.
func TestRequestBudget(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 8})
	w := testWorkload(50)
	mk := func(n int) [][]float64 {
		xs := make([][]float64, n)
		for i := range xs {
			xs[i] = testHistogram(w.Domain(), int64(i))
		}
		return xs
	}
	// Budget exactly covers the batch.
	if _, err := e.Answer(Request{Workload: w, Histograms: mk(4), Eps: 0.25, Budget: 1.0}); err != nil {
		t.Fatalf("exact budget rejected: %v", err)
	}
	// One histogram too many.
	if _, err := e.Answer(Request{Workload: w, Histograms: mk(5), Eps: 0.25, Budget: 1.0}); !errors.Is(err, privacy.ErrBudgetExhausted) {
		t.Fatalf("overspending batch = %v, want ErrBudgetExhausted", err)
	}
}

// TestAnswerDeterministic: identical requests produce identical noise
// regardless of scheduling, and batch answers match the equivalent
// single-histogram requests (seed derivation is per-index).
func TestAnswerDeterministic(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 4})
	w := testWorkload(60)
	xs := [][]float64{
		testHistogram(w.Domain(), 61),
		testHistogram(w.Domain(), 62),
		testHistogram(w.Domain(), 63),
	}
	req := Request{Workload: w, Histograms: xs, Eps: 0.5, Seed: 7}
	a, err := e.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical requests produced different releases")
	}
	for i, x := range xs {
		one, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 0.5, Seed: 7 + int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(one[0], a[i]) {
			t.Fatalf("batch answer %d differs from single answer at seed %d", i, 7+i)
		}
	}
}

// TestRequestFingerprint: a caller-supplied fingerprint shares the cache
// across distinct workload pointers without touching the pointer memo
// (the HTTP server builds a fresh matrix per request; memoizing those
// pointers would only pin dead matrices).
func TestRequestFingerprint(t *testing.T) {
	var prepares atomic.Int64
	e := newTestEngine(t, Options{PrepareHook: func(string) { prepares.Add(1) }})
	w1 := testWorkload(95)
	w2 := testWorkload(95) // same content, different allocation
	fp := core.Fingerprint(w1.W)
	if fp != core.Fingerprint(w2.W) {
		t.Fatal("identical workloads fingerprint differently")
	}
	x := testHistogram(w1.Domain(), 96)
	for _, w := range []*workload.Workload{w1, w2} {
		if _, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 1, Fingerprint: fp}); err != nil {
			t.Fatal(err)
		}
	}
	if prepares.Load() != 1 {
		t.Fatalf("Prepare ran %d times for one fingerprint, want 1", prepares.Load())
	}
	e.memoMu.RLock()
	memoLen := len(e.memo)
	e.memoMu.RUnlock()
	if memoLen != 0 {
		t.Fatalf("pointer memo has %d entries despite caller-supplied fingerprints", memoLen)
	}
}

// TestUnseededNoiseUnpredictable: with no Seed (the production mode),
// identical requests must NOT produce identical noise — a repeatable
// release would let anyone subtract the noise and recover exact answers.
func TestUnseededNoiseUnpredictable(t *testing.T) {
	e := newTestEngine(t, Options{})
	w := testWorkload(97)
	x := testHistogram(w.Domain(), 98)
	req := Request{Workload: w, Histograms: [][]float64{x, x}, Eps: 0.5}
	a, err := e.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a[0], a[1]) {
		t.Fatal("two unseeded releases in one batch drew identical noise")
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("two unseeded requests drew identical noise")
	}
}

// TestDiskCacheKeyedOnOptions: two LRM engines with different tuning
// sharing a directory must not serve each other's factorizations.
func TestDiskCacheKeyedOnOptions(t *testing.T) {
	dir := t.TempDir()
	w := testWorkload(99)
	x := testHistogram(w.Domain(), 100)
	var p1, p2 atomic.Int64
	e1 := newTestEngine(t, Options{CacheDir: dir, PrepareHook: func(string) { p1.Add(1) }})
	e2 := newTestEngine(t, Options{
		Mechanism:   mechanism.LRM{Options: core.Options{MaxOuterIter: 5, MaxInnerIter: 2, MaxNesterovIter: 5, Rank: 2}},
		CacheDir:    dir,
		PrepareHook: func(string) { p2.Add(1) },
	})
	if _, err := e1.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 1}); err != nil {
		t.Fatal(err)
	}
	if p1.Load() != 1 || p2.Load() != 1 {
		t.Fatalf("prepares = %d, %d: differently tuned engines must not share cache files", p1.Load(), p2.Load())
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.lrmd"))
	if len(files) != 2 {
		t.Fatalf("cache dir has %d files, want 2 (one per options digest): %v", len(files), files)
	}
}

// TestAnswerValidation covers the request-shape errors.
func TestAnswerValidation(t *testing.T) {
	e := newTestEngine(t, Options{})
	w := testWorkload(70)
	good := [][]float64{testHistogram(w.Domain(), 71)}
	if _, err := e.Answer(Request{Histograms: good, Eps: 1}); err == nil {
		t.Fatal("nil workload accepted")
	}
	if _, err := e.Answer(Request{Workload: w, Eps: 1}); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := e.Answer(Request{Workload: w, Histograms: good, Eps: 0}); err == nil {
		t.Fatal("zero eps accepted")
	}
	if _, err := e.Answer(Request{Workload: w, Histograms: [][]float64{{1, 2}}, Eps: 1}); err == nil {
		t.Fatal("wrong-length histogram accepted")
	}
	if _, err := e.Answer(Request{Workload: w, Histograms: good, Eps: 1, Budget: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// TestAnswerAfterClose: Close is real shutdown — later Answer calls are
// refused with the sentinel, and Close is idempotent.
func TestAnswerAfterClose(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	w := testWorkload(80)
	xs := [][]float64{testHistogram(w.Domain(), 81), testHistogram(w.Domain(), 82)}
	if _, err := e.Answer(Request{Workload: w, Histograms: xs, Eps: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if _, err := e.Answer(Request{Workload: w, Histograms: xs, Eps: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("answer after close = %v, want ErrClosed", err)
	}
}

// TestNonLRMMechanism: the engine serves any Mechanism; disk caching is
// simply skipped when the Prepared has no decomposition to persist.
func TestNonLRMMechanism(t *testing.T) {
	e := newTestEngine(t, Options{Mechanism: mechanism.LaplaceData{}, CacheDir: t.TempDir()})
	w := testWorkload(90)
	x := testHistogram(w.Domain(), 91)
	if _, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 1}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.DiskWrites != 0 || st.Prepares != 1 {
		t.Fatalf("stats = %+v, want one prepare and no disk writes for LM", st)
	}
}
