package workload

import (
	"math"
	"strings"
	"testing"

	"lrm/internal/rng"
)

func TestAnalyzeIdentity(t *testing.T) {
	s, err := Analyze(Identity(8))
	if err != nil {
		t.Fatal(err)
	}
	if s.Queries != 8 || s.Domain != 8 || s.Rank != 8 {
		t.Fatalf("stats %+v", s)
	}
	if s.Sensitivity != 1 || s.SquaredSum != 8 {
		t.Fatalf("stats %+v", s)
	}
	if math.Abs(s.ConditionNumber-1) > 1e-9 {
		t.Fatalf("identity condition number %g", s.ConditionNumber)
	}
	// LM and NOR coincide on the identity: 2n = 2m·Δ'².
	if math.Abs(s.LaplaceSSE-s.ResultsSSE) > 1e-12 {
		t.Fatalf("LM %g vs NOR %g on identity", s.LaplaceSSE, s.ResultsSSE)
	}
	if s.LowRank() {
		t.Fatal("identity must not be low-rank")
	}
	// The factorization is retained for PrepareAnalyzed consumers.
	if s.SVD == nil || s.SVD.U.Rows() != 8 || len(s.SVD.S) != 8 {
		t.Fatalf("analysis did not retain its SVD: %+v", s.SVD)
	}
}

func TestAnalyzeLowRankRegime(t *testing.T) {
	w := Related(30, 40, 3, rng.New(1))
	s, err := Analyze(w)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank != 3 {
		t.Fatalf("rank %d want 3", s.Rank)
	}
	if !s.LowRank() {
		t.Fatal("rank-3 of min 30 must report low-rank")
	}
	if !strings.Contains(s.Describe(), "favourable") {
		t.Fatalf("describe: %s", s.Describe())
	}
}

func TestAnalyzeBaselineComparison(t *testing.T) {
	// Marginal workloads have small sensitivity but large squared sum:
	// noise-on-results must win (the Section 3.2 inequality).
	s, err := Analyze(Marginal(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if s.BetterBaseline() != "noise-on-results" {
		t.Fatalf("marginals: %s (NOR %g vs LM %g)", s.BetterBaseline(), s.ResultsSSE, s.LaplaceSSE)
	}
	// WDiscrete (dense ±1) has huge sensitivity: noise-on-data wins.
	s, err = Analyze(Discrete(16, 32, 0.02, rng.New(2)))
	if err != nil {
		t.Fatal(err)
	}
	if s.BetterBaseline() != "noise-on-data" {
		t.Fatalf("discrete: %s", s.BetterBaseline())
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Fatal("want error for nil workload")
	}
	w := Identity(2)
	w.W.Set(0, 0, math.Inf(1))
	if _, err := Analyze(w); err == nil {
		t.Fatal("want error for non-finite matrix")
	}
}
