package hist

import (
	"math"
	"testing"

	"lrm/internal/rng"
)

func TestSelectBucketsPrefersFewOnBlockyData(t *testing.T) {
	// Two plateaus at low ε: smoothing pays, so the selection should pick
	// a small B (≥ the 2 true blocks, far below n).
	n := 128
	x := make([]float64, n)
	for i := range x {
		if i < 64 {
			x[i] = 500
		}
	}
	src := rng.New(1)
	eps := 0.1
	noisy := make([]float64, n)
	for i := range x {
		noisy[i] = x[i] + src.Laplace(1/eps)
	}
	b, err := SelectBuckets(noisy, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if b > 16 {
		t.Fatalf("selected %d buckets on 2-block data, want few", b)
	}
	if b < 2 {
		t.Fatalf("selected %d buckets, the 2 blocks differ by 500 ≫ noise", b)
	}
}

func TestSelectBucketsPrefersManyOnRoughDataHighEps(t *testing.T) {
	// i.i.d. rough data at large ε: any merging adds bias ≫ the tiny
	// noise, so the selection should keep (nearly) every cell.
	src := rng.New(2)
	n := 64
	noisy := src.UniformVec(n, 0, 1000) // ~the true rough data, ε huge
	b, err := SelectBuckets(noisy, 100)
	if err != nil {
		t.Fatal(err)
	}
	if b < n/2 {
		t.Fatalf("selected %d buckets on rough data at huge ε, want ≈n=%d", b, n)
	}
}

func TestSelectBucketsValidation(t *testing.T) {
	if _, err := SelectBuckets(nil, 1); err == nil {
		t.Fatal("want error for empty counts")
	}
	if _, err := SelectBuckets([]float64{1}, 0); err == nil {
		t.Fatal("want error for zero epsilon")
	}
}

func TestNoiseFirstAutoBeatsPlainLaplaceOnBlockyData(t *testing.T) {
	n := 128
	x := make([]float64, n)
	for i := range x {
		switch {
		case i < 48:
			x[i] = 300
		case i < 96:
			x[i] = 80
		default:
			x[i] = 180
		}
	}
	src := rng.New(3)
	const eps = 0.2
	var autoSSE, rawSSE float64
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		res, err := NoiseFirstAuto(x, eps, src)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			d := res.Estimate[i] - x[i]
			autoSSE += d * d
			e := src.Laplace(1 / eps)
			rawSSE += e * e
		}
	}
	if autoSSE >= rawSSE/2 {
		t.Fatalf("auto NoiseFirst SSE %g should be well below raw Laplace %g", autoSSE/trials, rawSSE/trials)
	}
}

func TestNoiseFirstAutoValidation(t *testing.T) {
	src := rng.New(4)
	if _, err := NoiseFirstAuto(nil, 1, src); err == nil {
		t.Fatal("want error for empty data")
	}
	if _, err := NoiseFirstAuto([]float64{1}, 0, src); err == nil {
		t.Fatal("want error for zero epsilon")
	}
}

func TestCandidateBuckets(t *testing.T) {
	got := candidateBuckets(10)
	want := []int{1, 2, 4, 8, 10}
	if len(got) != len(want) {
		t.Fatalf("candidates %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates %v want %v", got, want)
		}
	}
	if g := candidateBuckets(1); len(g) != 1 || g[0] != 1 {
		t.Fatalf("n=1 candidates %v", g)
	}
	// Power-of-two n must not duplicate the final entry.
	g := candidateBuckets(8)
	for i := 1; i < len(g); i++ {
		if g[i] == g[i-1] {
			t.Fatalf("duplicate candidate in %v", g)
		}
	}
	if math.MaxInt == 0 { // keep math imported for future assertions
		t.Fatal()
	}
}
