package sparse

import (
	"bytes"
	"strings"
	"testing"

	"lrm/internal/rng"
)

func TestSerializeRoundTrip(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 5; trial++ {
		d := randomDense(1+src.Intn(20), 1+src.Intn(20), 0.3, src)
		a := FromDense(d, 0)
		var buf bytes.Buffer
		if err := a.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !back.ToDense().Equal(d) {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestSerializeEmptyMatrix(t *testing.T) {
	var a CSR
	var buf bytes.Buffer
	// The zero value has a nil rowPtr; Encode/Read must still agree.
	a.rowPtr = []int{0}
	a.rows = 0
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != 0 || back.NNZ() != 0 {
		t.Fatal("empty round trip wrong")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not gob at all")); err == nil {
		t.Fatal("want decode error")
	}
}

func TestReadRejectsCorruptedStructure(t *testing.T) {
	// Hand-build invalid wire forms through the encoder by corrupting a
	// valid matrix's fields.
	valid := Identity(3)
	corrupt := func(mod func(*CSR)) error {
		c := &CSR{rows: valid.rows, cols: valid.cols,
			rowPtr: append([]int(nil), valid.rowPtr...),
			colIdx: append([]int(nil), valid.colIdx...),
			val:    append([]float64(nil), valid.val...)}
		mod(c)
		var buf bytes.Buffer
		if err := c.Encode(&buf); err != nil {
			return err
		}
		_, err := Read(&buf)
		return err
	}
	for name, mod := range map[string]func(*CSR){
		"short rowptr":    func(c *CSR) { c.rowPtr = c.rowPtr[:2] },
		"decreasing ptrs": func(c *CSR) { c.rowPtr[1] = 3; c.rowPtr[2] = 1 },
		"col oob":         func(c *CSR) { c.colIdx[0] = 99 },
		"negative col":    func(c *CSR) { c.colIdx[2] = -1 },
		"span mismatch":   func(c *CSR) { c.rowPtr[3] = 2 },
		"negative dims":   func(c *CSR) { c.rows = -1 },
	} {
		if err := corrupt(mod); err == nil {
			t.Fatalf("%s: want validation error", name)
		}
	}
	// Unsorted columns within a row.
	twoInRow, err := FromTriplets(1, 3, []Triplet{{0, 0, 1}, {0, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	c := &CSR{rows: 1, cols: 3,
		rowPtr: twoInRow.rowPtr,
		colIdx: []int{2, 0},
		val:    twoInRow.val}
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("unsorted columns: want validation error")
	}
}
