package mechanism

import (
	"math"
	"testing"

	"lrm/internal/mat"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

func TestHaarStrategySensitivity(t *testing.T) {
	for _, n := range []int{1, 2, 8, 16, 13} {
		a, err := HaarStrategy(n)
		if err != nil {
			t.Fatal(err)
		}
		padded := 1
		h := 0
		for padded < n {
			padded *= 2
			h++
		}
		want := float64(1 + h)
		if got := mat.MaxColAbsSum(a); math.Abs(got-want) > 1e-12 {
			t.Fatalf("n=%d: sensitivity %v, want %v", n, got, want)
		}
	}
}

func TestHaarStrategyRowsOrthogonal(t *testing.T) {
	a, err := HaarStrategy(16)
	if err != nil {
		t.Fatal(err)
	}
	g := mat.GramT(a)
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			if i != j && math.Abs(g.At(i, j)) > 1e-12 {
				t.Fatalf("rows %d,%d not orthogonal: %v", i, j, g.At(i, j))
			}
		}
	}
}

// The analytic SSE of the dense Haar strategy must match the fast
// transform-based wavelet mechanism exactly (power-of-two domain).
func TestWaveletMatchesDenseStrategy(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		w := workload.Range(12, n, rng.New(int64(n)))
		fast, err := Wavelet{}.Prepare(w)
		if err != nil {
			t.Fatal(err)
		}
		a, err := HaarStrategy(n)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := NewStrategyPrepared(w, a)
		if err != nil {
			t.Fatal(err)
		}
		got, want := fast.ExpectedSSE(1), dense.ExpectedSSE(1)
		if math.Abs(got-want) > 1e-6*want {
			t.Fatalf("n=%d: fast wavelet SSE %v != dense strategy SSE %v", n, got, want)
		}
	}
}

func TestTreeStrategyShape(t *testing.T) {
	a, err := TreeStrategy(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 2 + 4 + 8 = 15 nodes.
	if a.Rows() != 15 || a.Cols() != 8 {
		t.Fatalf("dims %d×%d", a.Rows(), a.Cols())
	}
	// Sensitivity = number of levels.
	if got := mat.MaxColAbsSum(a); got != 4 {
		t.Fatalf("sensitivity %v, want 4", got)
	}
	// Root row is all ones.
	for j := 0; j < 8; j++ {
		if a.At(0, j) != 1 {
			t.Fatal("root row not all ones")
		}
	}
}

// The fast hierarchical mechanism's Monte-Carlo error must match the
// analytic SSE of its dense least-squares equivalent: Hay et al.'s
// two-pass consistency IS the least-squares estimate.
func TestHierarchicalMatchesDenseStrategy(t *testing.T) {
	n := 16
	w := workload.Range(10, n, rng.New(3))
	a, err := TreeStrategy(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewStrategyPrepared(w, a)
	if err != nil {
		t.Fatal(err)
	}
	want := dense.ExpectedSSE(1)

	fast, err := Hierarchical{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	got := empiricalSSE(t, fast, w, x, 1, 20000, rng.New(4))
	if math.Abs(got-want) > 0.08*want {
		t.Fatalf("fast HM empirical SSE %v vs dense analytic %v", got, want)
	}
}

// Same cross-validation for the wavelet fast path, via Monte Carlo on a
// non-power-of-two domain (exercises padding in both paths).
func TestWaveletPaddedMatchesDenseStrategy(t *testing.T) {
	n := 12
	w := workload.Range(8, n, rng.New(5))
	a, err := HaarStrategy(n)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewStrategyPrepared(w, a)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Wavelet{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	got := empiricalSSE(t, fast, w, x, 1, 20000, rng.New(6))
	want := dense.ExpectedSSE(1)
	if math.Abs(got-want) > 0.08*want {
		t.Fatalf("fast WM empirical SSE %v vs dense analytic %v", got, want)
	}
}

func TestStrategyConstructorsRejectBadInput(t *testing.T) {
	if _, err := HaarStrategy(0); err == nil {
		t.Fatal("HaarStrategy(0) accepted")
	}
	if _, err := TreeStrategy(0, 2); err == nil {
		t.Fatal("TreeStrategy(0,2) accepted")
	}
	if _, err := TreeStrategy(8, 1); err == nil {
		t.Fatal("TreeStrategy(8,1) accepted")
	}
}

func TestTreeStrategyBranch4(t *testing.T) {
	a, err := TreeStrategy(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 4 + 16 nodes, 3 levels.
	if a.Rows() != 21 {
		t.Fatalf("rows = %d, want 21", a.Rows())
	}
	if got := mat.MaxColAbsSum(a); got != 3 {
		t.Fatalf("sensitivity %v, want 3", got)
	}
}
