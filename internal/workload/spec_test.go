package workload

import (
	"math"
	"testing"

	"lrm/internal/mat"
	"lrm/internal/rng"
)

// specCase pairs a spec with its materialized dense equivalent built by
// the pre-existing dense generators.
type specCase struct {
	name  string
	spec  Spec
	dense *Workload
}

func specCases(t *testing.T) []specCase {
	t.Helper()
	src := rng.New(7)
	rel := Related(12, 18, 3, src)
	kronW := func(name string, ws ...*Workload) *Workload {
		k := mat.Eye(1)
		for _, w := range ws {
			k = mat.Kron(k, w.W)
		}
		return FromMatrix(name, k)
	}
	kron2 := kronW("k2", Prefix(5), AllRanges(4))
	kron3dense := kronW("k3", Prefix(3), Identity(4), Total(5))
	return []specCase{
		{"prefix", NewPrefixSpec(9), Prefix(9)},
		{"ranges", NewAllRangesSpec(7), AllRanges(7)},
		{"identity", NewIdentitySpec(6), Identity(6)},
		{"total", NewTotalSpec(8), Total(8)},
		{"dense", AsSpec(rel), rel},
		{"kron2", NewKronSpec(NewPrefixSpec(5), NewAllRangesSpec(4)), kron2},
		{"kron3", NewKronSpec(NewPrefixSpec(3), NewIdentitySpec(4), NewTotalSpec(5)), kron3dense},
		{"kron-dense-factor", NewKronSpec(AsSpec(rel), NewPrefixSpec(3)), kronW("kd", rel, Prefix(3))},
		{"marginals-2way", NewMarginalSpec([]int{4, 6}, 1), Marginal(4, 6)},
		{"marginals-3attr-k2", NewMarginalSpec([]int{3, 4, 2}, 2), dense3AttrMarginals(t, []int{3, 4, 2}, 2)},
	}
}

// dense3AttrMarginals builds the k-way marginal matrix the slow way:
// stacked Kronecker blocks of identity/total factors.
func dense3AttrMarginals(t *testing.T, dims []int, k int) *Workload {
	t.Helper()
	var blocks []*Workload
	for _, sub := range subsetsOf(len(dims), k) {
		inS := make(map[int]bool)
		for _, i := range sub {
			inS[i] = true
		}
		blk := mat.Eye(1)
		for i, d := range dims {
			var f *mat.Dense
			if inS[i] {
				f = mat.Eye(d)
			} else {
				f = Total(d).W
			}
			blk = mat.Kron(blk, f)
		}
		blocks = append(blocks, FromMatrix("blk", blk))
	}
	return Stack("marginals", blocks...)
}

const specTol = 1e-9

func TestSpecMatchesDense(t *testing.T) {
	for _, tc := range specCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			s, w := tc.spec, tc.dense
			if s.Queries() != w.Queries() || s.Domain() != w.Domain() {
				t.Fatalf("shape %dx%d, dense %dx%d", s.Queries(), s.Domain(), w.Queries(), w.Domain())
			}
			if got, want := s.Sensitivity(), w.Sensitivity(); math.Abs(got-want) > specTol*(1+want) {
				t.Errorf("Sensitivity %g, dense %g", got, want)
			}
			if got, want := s.SquaredSum(), w.SquaredSum(); math.Abs(got-want) > specTol*(1+want) {
				t.Errorf("SquaredSum %g, dense %g", got, want)
			}

			src := rng.New(int64(len(tc.name)))
			x := src.UniformVec(s.Domain(), -2, 3)
			got := s.AnswerTo(make([]float64, s.Queries()), x)
			want := w.Answer(x)
			scale := 1 + mat.VecNorm2(want)
			for i := range got {
				if math.Abs(got[i]-want[i]) > specTol*scale {
					t.Fatalf("AnswerTo[%d] = %g, dense %g", i, got[i], want[i])
				}
			}

			gotG := s.GramMulTo(make([]float64, s.Domain()), x)
			wantG := mat.MulVecT(w.W, want)
			scaleG := 1 + mat.VecNorm2(wantG)
			for i := range gotG {
				if math.Abs(gotG[i]-wantG[i]) > specTol*scaleG {
					t.Fatalf("GramMulTo[%d] = %g, dense %g", i, gotG[i], wantG[i])
				}
			}

			md, err := MaterializeSpec(s, 1<<20)
			if err != nil {
				t.Fatalf("MaterializeSpec: %v", err)
			}
			if !md.W.EqualApprox(w.W, specTol) {
				t.Errorf("materialized matrix differs from dense generator")
			}
		})
	}
}

func TestAnalyzeSpecMatchesDense(t *testing.T) {
	for _, tc := range specCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			got, err := AnalyzeSpec(tc.spec)
			if err != nil {
				t.Fatalf("AnalyzeSpec: %v", err)
			}
			want, err := Analyze(tc.dense)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if got.Queries != want.Queries || got.Domain != want.Domain {
				t.Fatalf("shape %dx%d vs %dx%d", got.Queries, got.Domain, want.Queries, want.Domain)
			}
			if got.Rank != want.Rank {
				t.Errorf("Rank %d, dense analysis %d", got.Rank, want.Rank)
			}
			// Closed-form and Jacobi-SVD condition numbers agree to the
			// factorization's accuracy, not bit-exactly.
			if relErr(got.ConditionNumber, want.ConditionNumber) > 1e-6 {
				t.Errorf("ConditionNumber %g, dense analysis %g", got.ConditionNumber, want.ConditionNumber)
			}
			if relErr(got.Sensitivity, want.Sensitivity) > specTol {
				t.Errorf("Sensitivity %g, dense %g", got.Sensitivity, want.Sensitivity)
			}
			if relErr(got.LaplaceSSE, want.LaplaceSSE) > specTol || relErr(got.ResultsSSE, want.ResultsSSE) > specTol {
				t.Errorf("SSEs (%g, %g), dense (%g, %g)", got.LaplaceSSE, got.ResultsSSE, want.LaplaceSSE, want.ResultsSSE)
			}
			if got.LowRank() != want.LowRank() {
				t.Errorf("LowRank %v, dense %v", got.LowRank(), want.LowRank())
			}
		})
	}
}

func relErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(1, math.Abs(b))
}

// TestAnalyzeGenericLanczos drives the no-closed-form estimator path
// with an opaque wrapper and checks the estimates against the closed
// form. Lanczos without reorthogonalization is an estimator, not a
// factorization: the rank must match here (tiny well-separated
// spectrum) but the condition number only to a few percent.
type opaqueSpec struct{ Spec }

func TestAnalyzeGenericLanczos(t *testing.T) {
	inner := NewPrefixSpec(24)
	got, err := AnalyzeSpec(opaqueSpec{inner})
	if err != nil {
		t.Fatalf("AnalyzeSpec: %v", err)
	}
	want, err := AnalyzeSpec(inner)
	if err != nil {
		t.Fatalf("AnalyzeSpec(inner): %v", err)
	}
	if got.Rank != want.Rank {
		t.Errorf("estimated rank %d, closed form %d", got.Rank, want.Rank)
	}
	if relErr(got.ConditionNumber, want.ConditionNumber) > 5e-2 {
		t.Errorf("estimated cond %g, closed form %g", got.ConditionNumber, want.ConditionNumber)
	}
	if got.LaplaceSSE != want.LaplaceSSE || got.ResultsSSE != want.ResultsSSE {
		t.Errorf("closed-form SSEs must not depend on the estimator")
	}
}

func TestSpecDigests(t *testing.T) {
	specs := []Spec{
		NewPrefixSpec(16),
		NewPrefixSpec(17),
		NewAllRangesSpec(16),
		NewIdentitySpec(16),
		NewTotalSpec(16),
		NewKronSpec(NewPrefixSpec(16), NewPrefixSpec(4)),
		NewKronSpec(NewPrefixSpec(4), NewPrefixSpec(16)),
		NewMarginalSpec([]int{4, 4}, 1),
		NewMarginalSpec([]int{4, 4}, 2),
		AsSpec(Prefix(16)),
	}
	seen := map[string]string{}
	for _, s := range specs {
		d := s.Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("digest collision: %s and %s", prev, s.Describe())
		}
		seen[d] = s.Describe()
		if d != s.Digest() {
			t.Errorf("%s: digest not deterministic", s.Describe())
		}
		if fp := SpecFingerprint(s); fp != "spec-"+d {
			t.Errorf("SpecFingerprint %q not namespaced", fp)
		}
	}
	// Equal structure ⇒ equal digest, across construction routes.
	a := NewKronSpec(NewPrefixSpec(8), NewPrefixSpec(9))
	b := NewKronSpec(NewKronSpec(NewPrefixSpec(8)), NewPrefixSpec(9)) // flattened
	if a.Digest() != b.Digest() {
		t.Errorf("flattened kron digest differs")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	for _, in := range []string{
		"prefix(64)",
		"ranges(32)",
		"identity(10)",
		"total(10)",
		"marginals(4,6,2;k=2)",
		"kron:prefix(16)xprefix(8)",
		"kron:prefix(4)xmarginals(3,3;k=1)xtotal(2)",
	} {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		if s.Describe() != in {
			t.Errorf("Describe %q, want %q", s.Describe(), in)
		}
		again, err := ParseSpec(s.Describe())
		if err != nil {
			t.Fatalf("re-parse %q: %v", s.Describe(), err)
		}
		if again.Digest() != s.Digest() {
			t.Errorf("%q: digest changed across round trip", in)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"wavelet(64)",
		"prefix(0)",
		"prefix(-3)",
		"prefix(99999999999)",
		"prefix(4",
		"prefix)4(",
		"ranges(20000)", // m = n(n+1)/2 past the parse cap
		"kron:",
		"kron:prefix(4)x",
		"kron:prefix(4)xwavelet(4)",
		"kron:prefix(9000)xprefix(9000)", // product past the cap
		"marginals(4,6)",
		"marginals(4,6;k=3)",
		"marginals(4,6;k=0)",
		"dense(4)",
		"dense:4x4:abc",
	} {
		if s, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) = %v, want error", in, s.Describe())
		}
	}
}

func TestParseSpecAcceptanceScale(t *testing.T) {
	s, err := ParseSpec("kron:prefix(1024)xprefix(1024)")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Queries() != 1<<20 || s.Domain() != 1<<20 {
		t.Fatalf("got %d×%d, want 2^20×2^20", s.Queries(), s.Domain())
	}
	if cells := float64(s.Queries()) * float64(s.Domain()); cells < 1e12 {
		t.Fatalf("only %g cells, acceptance needs ≥ 1e12", cells)
	}
}
