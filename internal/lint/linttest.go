package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Fixture support: an analysistest-style harness without the
// analysistest dependency. Fixture packages live under
// internal/lint/testdata/src/<analyzer>/… (testdata keeps them out of
// ./... builds; the loader addresses them explicitly) and mark expected
// findings with trailing comments of the form
//
//	// want "regexp"
//
// CheckFixture loads the package, runs one analyzer, and verifies the
// findings and the want comments match one-to-one by line.

// wantComment is one expected diagnostic.
type wantComment struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// CheckFixture runs the analyzer over the fixture package at importPath
// and returns a list of mismatch descriptions (empty means the fixture
// passed).
func CheckFixture(a *Analyzer, importPath string) ([]string, error) {
	pkgs, err := LoadPackages([]string{importPath})
	if err != nil {
		return nil, err
	}
	if len(pkgs) != 1 {
		return nil, fmt.Errorf("lint: fixture %s resolved to %d packages", importPath, len(pkgs))
	}
	pkg := pkgs[0]
	diags, err := runAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		return nil, err
	}

	var wants []*wantComment
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				pattern, err := strconv.Unquote(strings.TrimSpace(rest))
				if err != nil {
					return nil, fmt.Errorf("%s: malformed want comment %q", pos, c.Text)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want regexp: %v", pos, err)
				}
				wants = append(wants, &wantComment{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}

	var problems []string
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.hit {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re))
		}
	}
	return problems, nil
}
