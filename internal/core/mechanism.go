package core

import (
	"errors"
	"fmt"
	"sync"

	"lrm/internal/mat"
	"lrm/internal/privacy"
	"lrm/internal/rng"
)

// Mechanism is the Low-Rank Mechanism of Eq. (6): given W ≈ B·L, release
//
//	M(Q,D) = B·(L·x + Lap(Δ(B,L)/ε)^r)
//
// which satisfies ε-differential privacy because L·x is a linear query
// batch of sensitivity Δ(B,L) and post-processing by B is free.
type Mechanism struct {
	d *Decomposition
	// delta caches Δ(B,L): the decomposition is immutable once wrapped,
	// and recomputing the column scan on every Answer call would dominate
	// the O(r·(n+m)) answering cost itself.
	delta float64
	// scratch pools the r-length intermediate buffer so concurrent
	// Answer calls (the evaluation harness fans trials across goroutines)
	// each reuse one instead of allocating twice per call.
	scratch sync.Pool
}

// NewMechanism wraps a decomposition as a query-answering mechanism. The
// decomposition must not be mutated afterwards (its sensitivity is
// cached).
func NewMechanism(d *Decomposition) (*Mechanism, error) {
	if d == nil || d.B == nil || d.L == nil {
		return nil, errors.New("core: nil decomposition")
	}
	if d.B.Cols() != d.L.Rows() {
		return nil, fmt.Errorf("core: decomposition shape mismatch %d×%d · %d×%d",
			d.B.Rows(), d.B.Cols(), d.L.Rows(), d.L.Cols())
	}
	r := d.L.Rows()
	m := &Mechanism{d: d, delta: d.Sensitivity()}
	m.scratch.New = func() any {
		buf := make([]float64, r)
		return &buf
	}
	return m, nil
}

// Answer releases ε-differentially-private answers to the workload on the
// histogram x. The only per-call allocation is the returned answer slice.
func (m *Mechanism) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if len(x) != m.d.L.Cols() {
		return nil, fmt.Errorf("core: data length %d != domain %d", len(x), m.d.L.Cols())
	}
	bufp := m.scratch.Get().(*[]float64)
	y := *bufp // L·x, then its noisy release, r-length
	mat.MulVecTo(y, m.d.L, x)
	if err := privacy.AddLaplaceNoise(y, m.delta, eps, src); err != nil {
		m.scratch.Put(bufp)
		return nil, err
	}
	out := mat.MulVecTo(make([]float64, m.d.B.Rows()), m.d.B, y)
	m.scratch.Put(bufp)
	return out, nil
}

// AnswerMany releases ε-differentially-private answers for a whole batch
// of histograms at once: x is n×B with one histogram per column, and the
// result is m×B with the corresponding releases as columns. The two
// dense products run as packed multi-RHS GEMMs (mat.MulColsTo) instead
// of 2·B mat-vecs — the low-rank factors are packed once per batch and
// streamed through register-blocked kernels — which is where the
// mechanism's batch framing pays off at serving scale.
//
// The release is bit-identical to calling Answer on each column in
// ascending order with the same source: MulColsTo guarantees column-exact
// products, and the noise is drawn column by column in the same order the
// loop would draw it.
func (m *Mechanism) AnswerMany(x *mat.Dense, eps privacy.Epsilon, src *rng.Source) (*mat.Dense, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if x == nil || x.Rows() != m.d.L.Cols() {
		rows := -1
		if x != nil {
			rows = x.Rows()
		}
		return nil, fmt.Errorf("core: data matrix has %d rows, domain is %d", rows, m.d.L.Cols())
	}
	if x.Cols() == 0 {
		return nil, errors.New("core: AnswerMany with no data columns")
	}
	cols := x.Cols()
	y := mat.MulColsTo(mat.New(m.d.L.Rows(), cols), m.d.L, x)
	buf := make([]float64, m.d.L.Rows())
	if err := m.noiseColumns(y, buf, eps, src); err != nil {
		return nil, err
	}
	return mat.MulColsTo(mat.New(m.d.B.Rows(), cols), m.d.B, y), nil
}

// noiseColumns is the AnswerMany epilogue between the two GEMMs: it
// perturbs y (r×B) in place, drawing each column's Laplace noise in
// ascending column order — the exact draw sequence a loop of per-column
// Answer calls sharing one source would produce, which the bit-identity
// contract with Answer requires. buf is the caller's r-length scratch.
//
//lrm:noalloc — one gather/noise/scatter pass per column over caller buffers
//lrm:sanitizer y — every column of y is Laplace-perturbed before return
func (m *Mechanism) noiseColumns(y *mat.Dense, buf []float64, eps privacy.Epsilon, src *rng.Source) error {
	cols := y.Cols()
	for j := 0; j < cols; j++ {
		for i := range buf {
			buf[i] = y.At(i, j)
		}
		if err := privacy.AddLaplaceNoise(buf, m.delta, eps, src); err != nil {
			return err
		}
		y.SetCol(j, buf)
	}
	return nil
}

// ExpectedSSE returns the analytic expected sum of squared errors
// (Lemma 1), excluding structural error from a relaxed decomposition.
func (m *Mechanism) ExpectedSSE(eps privacy.Epsilon) float64 {
	return m.d.ExpectedSSE(float64(eps))
}

// Decomposition returns the underlying factorization.
func (m *Mechanism) Decomposition() *Decomposition { return m.d }
