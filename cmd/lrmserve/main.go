// Command lrmserve serves ε-differentially-private batch query answering
// over HTTP, fronting the repository's concurrent answering engine
// (internal/engine): workload decompositions are prepared once, cached in
// memory (LRU, singleflight) and optionally on disk, then amortized over
// every subsequent request.
//
// Usage:
//
//	lrmserve -addr :8080 -mech lrm -cache-dir /var/cache/lrm
//	lrmserve -mech auto                      # plan per workload: analyze, score the
//	                                         # candidates, serve the winner (decisions
//	                                         # appear under "plans" in GET /stats)
//	lrmserve -mech auto -plan-candidates lrm,lm,nor,wm
//	lrmserve -coalesce-window 2ms            # merge concurrent same-workload requests
//	lrmserve -shard-rows 4096                # row-shard oversized workloads (ε splits by
//	                                         # sequential composition across shards)
//
// With -coalesce-window, concurrent POST /answer requests for the same
// workload fingerprint and ε (unseeded and unbudgeted only) are held up
// to the window and answered as one engine batch through the multi-RHS
// path; each caller receives exactly its own rows.
//
// Endpoints:
//
//	POST /answer
//	    Request body (JSON):
//	        {
//	          "workload":   [[...], ...],   // m×n query matrix W
//	          "histograms": [[...], ...],   // one or more length-n databases
//	          "eps":        0.5,            // per-histogram release budget
//	          "budget":     1.0,            // optional total ε cap for the request
//	          "seed":       7               // optional: pins the noise stream (debug/audit
//	                                        // only — omit in production; known seeds are
//	                                        // subtractable)
//	        }
//	    Response body: {"answers": [[...], ...], "fingerprint": "..."}
//	    Requests whose eps is zero, negative, or non-finite are rejected
//	    with 400 before any engine work.
//	GET /stats
//	    Engine counter snapshot (cache hits/misses, prepares, planned,
//	    evictions, disk traffic, requests, answers) plus the serving
//	    mechanism, and on -mech auto the per-workload plan decisions.
//	GET /healthz
//	    200 once serving.
//
// The server shuts down gracefully on SIGINT/SIGTERM: listeners stop,
// in-flight requests finish, then the engine's worker pool is released.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lrm/internal/core"
	"lrm/internal/engine"
	"lrm/internal/mat"
	"lrm/internal/mechanism"
	"lrm/internal/plan"
	"lrm/internal/privacy"
	"lrm/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		mechName   = flag.String("mech", "lrm", "serving mechanism: lrm, lm, nor, wm, hm, mm, fpa, cm, nf, sf — or 'auto' to plan per workload")
		coeffs     = flag.Int("coeffs", 0, "fpa: retained Fourier coefficients / cm: measurements / nf, sf: buckets (0 = mechanism default)")
		candidates = flag.String("plan-candidates", "", "auto: comma-separated candidate mechanisms to score (empty = lrm,lm,nor)")
		cacheDir   = flag.String("cache-dir", "", "directory for persisted decompositions and plans (empty = memory only)")
		cacheSize  = flag.Int("cache-size", 64, "max prepared workloads resident in memory")
		workers    = flag.Int("workers", 0, "max concurrent chunks per batch request on the shared worker pool (0 = GOMAXPROCS)")
		shardRows  = flag.Int("shard-rows", 0, "row-shard workloads with more than this many queries (0 = disabled); shards split eps by sequential composition")
		maxBody    = flag.Int64("max-body", 64<<20, "maximum request body size in bytes")
		coWindow   = flag.Duration("coalesce-window", 0, "hold concurrent same-workload answer requests up to this long and answer them as one engine batch (0 = disabled)")
		coMax      = flag.Int("coalesce-max", 64, "flush a coalescing window early once it holds this many histograms")
	)
	flag.Parse()

	engOpts := engine.Options{
		CacheSize: *cacheSize,
		CacheDir:  *cacheDir,
		Workers:   *workers,
		ShardRows: *shardRows,
	}
	served := *mechName
	if *mechName == "auto" {
		// Plan-aware serving: each workload is analyzed on first sight and
		// served by the candidate the planner scores best; decisions show
		// up under "plans" in GET /stats. Candidate typos must die here,
		// at startup — not as a 400 on every subsequent request.
		cands := splitCandidates(*candidates)
		for _, name := range cands {
			if _, err := mechanism.ByName(name, mechanism.Config{Coeffs: *coeffs}); err != nil {
				log.Fatalf("lrmserve: -plan-candidates: %v", err)
			}
		}
		engOpts.Planner = &plan.Options{
			Config:     mechanism.Config{Coeffs: *coeffs},
			Mechanisms: cands,
			ShardRows:  *shardRows,
		}
	} else {
		mech, err := mechanism.ByName(*mechName, mechanism.Config{Coeffs: *coeffs})
		if err != nil {
			log.Fatalf("lrmserve: %v", err)
		}
		engOpts.Mechanism = mech
		served = mech.Name()
	}
	eng, err := engine.New(engOpts)
	if err != nil {
		log.Fatalf("lrmserve: %v", err)
	}
	var co *coalescer
	if *coWindow > 0 {
		co = newCoalescer(eng, *coWindow, *coMax)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(eng, served, *maxBody, co),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("lrmserve: serving %s on %s (cache %d, dir %q)", served, *addr, *cacheSize, *cacheDir)

	select {
	case err := <-errc:
		log.Fatalf("lrmserve: %v", err)
	case <-ctx.Done():
	}
	log.Print("lrmserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("lrmserve: shutdown: %v", err)
	}
	eng.Close()
}

// answerRequest is the POST /answer JSON body.
type answerRequest struct {
	Workload [][]float64 `json:"workload"`
	//lrm:source — client-supplied unit counts, raw until noised
	Histograms [][]float64 `json:"histograms"`
	Eps        float64     `json:"eps"`
	Budget     float64     `json:"budget"`
	Seed       int64       `json:"seed"`
}

// answerResponse is the POST /answer JSON response.
type answerResponse struct {
	Answers     [][]float64 `json:"answers"`
	Fingerprint string      `json:"fingerprint"`
}

// statsResponse is the GET /stats JSON response. Plans is populated on
// an auto (plan-aware) server: one decision per planned workload still
// resident in the cache.
type statsResponse struct {
	Mechanism string                `json:"mechanism"`
	Engine    engine.Stats          `json:"engine"`
	Plans     []engine.PlanDecision `json:"plans,omitempty"`
}

// splitCandidates parses the -plan-candidates list; empty means the
// planner's default set.
func splitCandidates(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// newHandler builds the HTTP mux over an engine. Split from main so tests
// can drive it with httptest. co may be nil (coalescing disabled).
func newHandler(eng *engine.Engine, mechName string, maxBody int64, co *coalescer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/answer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		var req answerRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		// Reject a hopeless privacy budget before any engine work: a
		// zero, negative, or non-finite ε can never release anything, so
		// it must not cost a workload hash, a cache slot, or a coalescing
		// window. (NaN/Inf cannot survive JSON decoding, but the range
		// check still owns them for completeness.)
		if err := privacy.Epsilon(req.Eps).Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		wl, err := workloadFromJSON(req.Workload)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// Hash once, up front: the engine reuses it for cache keying (a
		// fresh per-request matrix would defeat its pointer memo), the
		// coalescer groups concurrent requests by it, and the response
		// echoes it so clients can correlate with /stats.
		fp := core.Fingerprint(wl.W)
		var answers [][]float64
		if co != nil && req.Seed == 0 && req.Budget == 0 {
			// Mergeable request: validate shapes first — inside a merged
			// batch a malformed histogram would fail the whole group, not
			// just its sender — then join the coalescing window.
			if err := validateHistograms(req.Histograms, wl.Domain()); err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
			answers, err = co.submit(wl, fp, req.Histograms, req.Eps)
		} else {
			answers, err = eng.Answer(engine.Request{
				Workload:    wl,
				Histograms:  req.Histograms,
				Eps:         privacy.Epsilon(req.Eps),
				Budget:      privacy.Epsilon(req.Budget),
				Seed:        req.Seed,
				Fingerprint: fp,
			})
		}
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, privacy.ErrBudgetExhausted) {
				status = http.StatusTooManyRequests
			}
			httpError(w, status, "%v", err)
			return
		}
		writeJSON(w, answerResponse{Answers: answers, Fingerprint: fp})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET required")
			return
		}
		writeJSON(w, statsResponse{Mechanism: mechName, Engine: eng.Stats(), Plans: eng.Decisions()})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// validateHistograms rejects empty batches and wrong-length histograms
// before a request joins a coalescing group.
func validateHistograms(hists [][]float64, domain int) error {
	if len(hists) == 0 {
		return errors.New("no histograms")
	}
	for i, h := range hists {
		if len(h) != domain {
			return fmt.Errorf("histogram %d has %d entries, domain is %d", i, len(h), domain)
		}
	}
	return nil
}

// workloadFromJSON validates and converts the wire matrix. The engine
// caches by content fingerprint, so a fresh matrix per request still
// shares the cached preparation with every identical predecessor.
func workloadFromJSON(rows [][]float64) (*workload.Workload, error) {
	if len(rows) == 0 {
		return nil, errors.New("workload matrix is empty")
	}
	n := len(rows[0])
	if n == 0 {
		return nil, errors.New("workload matrix has empty rows")
	}
	for i, row := range rows {
		if len(row) != n {
			return nil, fmt.Errorf("workload row %d has %d entries, row 0 has %d", i, len(row), n)
		}
	}
	w := &workload.Workload{W: mat.FromRows(rows), Name: "http"}
	if !w.W.IsFinite() {
		return nil, errors.New("workload matrix contains non-finite values")
	}
	return w, nil
}

// writeJSON encodes into a buffer before touching the ResponseWriter, so
// an encode failure (e.g. ±Inf answers, which encoding/json rejects) can
// still become a 500 instead of a 200 with an empty body.
//
//lrm:sink — v is serialized onto the wire
func writeJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	body = append(body, '\n')
	if _, err := w.Write(body); err != nil {
		log.Printf("lrmserve: writing response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	msg := fmt.Sprintf(format, args...)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": msg}); err != nil {
		log.Printf("lrmserve: writing error response: %v", err)
	}
}
