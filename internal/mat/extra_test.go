package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestLambdaMaxSym(t *testing.T) {
	a := Diag([]float64{1, 7, 3})
	if got := LambdaMaxSym(a, 200); math.Abs(got-7) > 1e-8 {
		t.Fatalf("LambdaMaxSym = %v, want 7", got)
	}
	if got := LambdaMaxSym(New(0, 0), 10); got != 0 {
		t.Fatalf("empty matrix lambda = %v", got)
	}
	if got := LambdaMaxSym(New(3, 3), 10); got != 0 {
		t.Fatalf("zero matrix lambda = %v", got)
	}
}

func TestLambdaMaxSymMatchesEig(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 5, 20} {
		spd := randSPD(rnd, n)
		e, err := FactorSymEig(spd)
		if err != nil {
			t.Fatal(err)
		}
		got := LambdaMaxSym(spd, 500)
		if math.Abs(got-e.Values[0]) > 1e-6*e.Values[0] {
			t.Fatalf("n=%d: power %v vs eig %v", n, got, e.Values[0])
		}
	}
}

func TestLUHilbertIllConditioned(t *testing.T) {
	// The 8×8 Hilbert matrix is famously ill-conditioned (~1e10) but LU
	// with partial pivoting should still solve it to a few digits.
	n := 8
	h := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h.Set(i, j, 1/float64(i+j+1))
		}
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = 1
	}
	b := MulVec(h, want)
	got, err := SolveVec(h, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-1) > 1e-3 {
			t.Fatalf("Hilbert solve x[%d] = %v", i, got[i])
		}
	}
}

func TestSVDRankOne(t *testing.T) {
	// Outer product u·vᵀ has exactly one nonzero singular value
	// ‖u‖·‖v‖.
	u := []float64{1, 2, 3}
	v := []float64{4, 5}
	a := New(3, 2)
	for i := range u {
		for j := range v {
			a.Set(i, j, u[i]*v[j])
		}
	}
	s := FactorSVD(a)
	want := VecNorm2(u) * VecNorm2(v)
	if math.Abs(s.S[0]-want) > 1e-10*want {
		t.Fatalf("S[0] = %v, want %v", s.S[0], want)
	}
	if s.Rank() != 1 {
		t.Fatalf("rank = %d, want 1", s.Rank())
	}
}

func TestSVDOrthogonalInputs(t *testing.T) {
	// An orthogonal matrix has all singular values equal to 1.
	rnd := rand.New(rand.NewSource(3))
	q := FactorSVD(randDense(rnd, 10, 10)).U // orthogonal by construction
	s := FactorSVD(q)
	for i, v := range s.S {
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("S[%d] = %v, want 1", i, v)
		}
	}
}

func TestMulLargeParallelPath(t *testing.T) {
	// Exercise the parallel branch of mulInto (total work above the
	// threshold) and compare against the naive product on a slice.
	rnd := rand.New(rand.NewSource(5))
	a := randDense(rnd, 300, 300)
	b := randDense(rnd, 300, 300)
	got := Mul(a, b)
	// Spot-check 50 random entries against explicit dot products.
	for trial := 0; trial < 50; trial++ {
		i, j := rnd.Intn(300), rnd.Intn(300)
		var want float64
		for k := 0; k < 300; k++ {
			want += a.At(i, k) * b.At(k, j)
		}
		if math.Abs(got.At(i, j)-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("entry (%d,%d) = %v, want %v", i, j, got.At(i, j), want)
		}
	}
}

func TestMulOddDimensionsUnrollTail(t *testing.T) {
	// Dimensions not divisible by the unroll factor exercise the scalar
	// tail of the blocked kernel.
	rnd := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 3, 5, 7, 9} {
		a := randDense(rnd, 4, k)
		b := randDense(rnd, k, 6)
		if got, want := Mul(a, b), mulNaive(a, b); !got.EqualApprox(want, 1e-12) {
			t.Fatalf("k=%d: blocked kernel mismatch", k)
		}
	}
}

func TestPseudoInverseZeroMatrix(t *testing.T) {
	p := PseudoInverse(New(3, 4))
	if p.Rows() != 4 || p.Cols() != 3 {
		t.Fatalf("dims %d×%d", p.Rows(), p.Cols())
	}
	for _, v := range p.RawData() {
		if v != 0 {
			t.Fatal("pseudo-inverse of zero not zero")
		}
	}
}

func TestConditionNumber(t *testing.T) {
	s := FactorSVD(Diag([]float64{10, 2}))
	if got := s.ConditionNumber(); math.Abs(got-5) > 1e-10 {
		t.Fatalf("C = %v, want 5", got)
	}
	if got := FactorSVD(New(2, 2)).ConditionNumber(); !math.IsInf(got, 1) {
		t.Fatalf("C of zero matrix = %v, want +Inf", got)
	}
}

func TestSolveRightSPDMismatch(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	spd := randSPD(rnd, 4)
	if _, err := SolveRightSPD(New(3, 5), spd); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestGramEmpty(t *testing.T) {
	g := Gram(New(0, 3))
	if g.Rows() != 3 || g.Cols() != 3 {
		t.Fatalf("Gram dims %d×%d", g.Rows(), g.Cols())
	}
	if SquaredSum(g) != 0 {
		t.Fatal("Gram of empty rows not zero")
	}
}
