package metrics

import (
	"math"
	"testing"

	"lrm/internal/mat"
	"lrm/internal/mechanism"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

func TestEvaluateDistributionBasics(t *testing.T) {
	src := rng.New(1)
	w := workload.Identity(16)
	x := src.UniformVec(16, 0, 10)
	d, err := EvaluateDistribution(mechanism.LaplaceData{}, w, x, 1, 200, src)
	if err != nil {
		t.Fatal(err)
	}
	if d.Trials != 200 {
		t.Fatalf("trials %d", d.Trials)
	}
	// Analytic mean for LM on the identity: 2n/ε² = 32.
	if math.Abs(d.Mean-32) > 8 {
		t.Fatalf("mean %g want ≈32", d.Mean)
	}
	if d.Min > d.Median || d.Median > d.P90 || d.P90 > d.Max {
		t.Fatalf("order statistics inconsistent: %+v", d)
	}
	if d.StdDev <= 0 || d.StdErr <= 0 || d.StdErr >= d.StdDev {
		t.Fatalf("spread stats inconsistent: std %g stderr %g", d.StdDev, d.StdErr)
	}
	lo, hi := d.ConfidenceInterval()
	if lo >= d.Mean || hi <= d.Mean {
		t.Fatalf("CI [%g,%g] does not bracket mean %g", lo, hi, d.Mean)
	}
	if len(d.PerQueryMean) != 16 {
		t.Fatalf("per-query length %d", len(d.PerQueryMean))
	}
	// Per-query means sum to the overall mean.
	var total float64
	for _, v := range d.PerQueryMean {
		total += v
	}
	if math.Abs(total-d.Mean) > 1e-9*d.Mean {
		t.Fatalf("per-query sum %g vs mean %g", total, d.Mean)
	}
	if d.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestEvaluateDistributionValidation(t *testing.T) {
	src := rng.New(2)
	w := workload.Identity(4)
	if _, err := EvaluateDistribution(mechanism.LaplaceData{}, w, make([]float64, 4), 1, 1, src); err == nil {
		t.Fatal("want error for 1 trial")
	}
	p, _ := mechanism.LaplaceData{}.Prepare(w)
	if _, err := EvaluatePreparedDistribution(p, w, make([]float64, 4), 1, 0, src); err == nil {
		t.Fatal("want error for 0 trials")
	}
}

func TestEvaluateDistributionPerQueryRevealsStructure(t *testing.T) {
	// NOR noise is i.i.d. per query, so a query batch whose rows differ in
	// scale still gets equal per-query noise; LM noise instead scales with
	// the row's squared sum. Check LM's per-query means track row energy.
	wl := workload.FromMatrix("two-rows", mat.FromRows([][]float64{
		{1, 0, 0, 0},
		{1, 1, 1, 1},
	}))
	src := rng.New(3)
	d, err := EvaluateDistribution(mechanism.LaplaceData{}, wl, []float64{1, 2, 3, 4}, 1, 400, src)
	if err != nil {
		t.Fatal(err)
	}
	// Row 1 has 4× the squared sum of row 0: per-query error ratio ≈ 4.
	ratio := d.PerQueryMean[1] / d.PerQueryMean[0]
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("per-query ratio %g want ≈4", ratio)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	if q := quantile(sorted, 0); q != 1 {
		t.Fatalf("q0 %g", q)
	}
	if q := quantile(sorted, 1); q != 5 {
		t.Fatalf("q1 %g", q)
	}
	if q := quantile(sorted, 0.5); q != 3 {
		t.Fatalf("q.5 %g", q)
	}
	if q := quantile(sorted, 0.25); q != 2 {
		t.Fatalf("q.25 %g", q)
	}
	if !math.IsNaN(quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}
