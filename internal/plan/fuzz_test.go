package plan

import (
	"bytes"
	"math"
	"testing"
)

// FuzzPlanDecode hammers the persisted-plan decoder: arbitrary bytes
// must either be rejected or produce a plan that re-validates, carries a
// registered mechanism and a valid ε, and round-trips through Encode
// with a stable digest. Plans are the second on-disk surface a restarted
// engine trusts, so the self-checking document must stay self-checking
// under mutation.
func FuzzPlanDecode(f *testing.F) {
	seed := &Plan{
		Fingerprint: "wl-fixture",
		Mechanism:   "lm",
		Eps:         0.5,
		SSE:         1.25,
		Shards:      1,
		Candidates: []Candidate{
			{Name: "lm", SSE: 1.25, Source: "analytic"},
			{Name: "lrm", SSE: math.NaN(), Source: "skipped", Reason: "fixture"},
		},
	}
	var buf bytes.Buffer
	if err := seed.Encode(&buf); err != nil {
		f.Fatalf("encoding seed: %v", err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("{}"))
	f.Add([]byte(`{"mechanism":"lm","eps":1,"sse":0,"shards":1,"fingerprint":"x","digest":"nope","lrm_options":{}}`))
	tampered := bytes.Clone(valid)
	tampered[bytes.IndexByte(tampered, '5')] = '6'
	f.Add(tampered)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted documents must satisfy what Decode promises.
		if err := p.Eps.Validate(); err != nil {
			t.Fatalf("accepted invalid eps: %v", err)
		}
		if p.Shards < 1 || p.Fingerprint == "" {
			t.Fatalf("accepted invalid plan: shards %d, fingerprint %q", p.Shards, p.Fingerprint)
		}
		if math.IsNaN(p.SSE) || math.IsInf(p.SSE, 0) || p.SSE < 0 {
			t.Fatalf("accepted invalid sse %v", p.SSE)
		}
		// Round-trip: Encode must regenerate a document Decode accepts
		// with the digest intact.
		var rt bytes.Buffer
		if err := p.Encode(&rt); err != nil {
			t.Fatalf("re-encoding accepted plan: %v", err)
		}
		q, err := Decode(&rt)
		if err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
		if q.Digest() != p.Digest() {
			t.Fatalf("digest drift: %s vs %s", q.Digest(), p.Digest())
		}
	})
}
