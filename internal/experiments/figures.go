package experiments

import (
	"fmt"
	"math"
	"time"

	"lrm/internal/dataset"
	"lrm/internal/mechanism"
	"lrm/internal/metrics"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// workloadKinds are the paper's three synthetic workload generators.
var workloadKinds = []string{"WDiscrete", "WRange", "WRelated"}

// maxConcurrentPoints bounds how many sweep points run at once. Each
// point's decomposition already uses a few cores for its matrix products,
// so a moderate fan-out saturates the machine without oversubscribing.
const maxConcurrentPoints = 6

// runPoints executes the sweep-point closures with bounded parallelism
// and returns the first error. Every closure writes only to its own
// result slot, so output order (and reproducibility) is unaffected.
func runPoints(points []func() error) error {
	sem := make(chan struct{}, maxConcurrentPoints)
	errc := make(chan error, len(points))
	for _, p := range points {
		sem <- struct{}{}
		go func(p func() error) {
			defer func() { <-sem }()
			errc <- p()
		}(p)
	}
	for i := 0; i < cap(sem); i++ {
		sem <- struct{}{}
	}
	close(errc)
	for err := range errc {
		if err != nil {
			return err
		}
	}
	return nil
}

// buildWorkload instantiates one of the paper's workloads.
func buildWorkload(kind string, m, n, s int, src *rng.Source) (*workload.Workload, error) {
	switch kind {
	case "WDiscrete":
		return workload.Discrete(m, n, 0.02, src), nil
	case "WRange":
		return workload.Range(m, n, src), nil
	case "WRelated":
		return workload.Related(m, n, s, src), nil
	}
	return nil, fmt.Errorf("experiments: unknown workload kind %q", kind)
}

// Figure2 reproduces "Effect of varying relaxation parameter γ with the
// Search Logs dataset for LRM": error and decomposition time as γ sweeps
// over [1e-4, 10] for all three workloads and ε ∈ {1, 0.1, 0.01}.
func Figure2(cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	data, err := searchLogsMerged(cfg, cfg.defaultN())
	if err != nil {
		return nil, err
	}
	grid := cfg.gammaGrid()
	results := make([][]Row, len(workloadKinds)*len(grid))
	var points []func() error
	for ki, kind := range workloadKinds {
		w, err := buildWorkload(kind, cfg.defaultM(), cfg.defaultN(),
			sDefault(cfg.defaultM(), cfg.defaultN()), rng.New(cfg.Seed+int64(ki)*31))
		if err != nil {
			return nil, err
		}
		for gi, gamma := range grid {
			slot := ki*len(grid) + gi
			kind, gamma := kind, gamma
			points = append(points, func() error {
				opts := cfg.lrmOptions()
				opts.Gamma = gamma
				start := time.Now()
				prepared, err := mechanism.LRM{Options: opts}.Prepare(w)
				if err != nil {
					return fmt.Errorf("Figure2 %s γ=%g: %w", kind, gamma, err)
				}
				prepSec := time.Since(start).Seconds()
				for _, eps := range cfg.epsilonsFig23() {
					m, err := metrics.EvaluatePrepared(prepared, w, data, privacy.Epsilon(eps), cfg.Trials, rng.New(cfg.Seed+7))
					if err != nil {
						return err
					}
					results[slot] = append(results[slot], Row{
						Figure: "Fig2", Dataset: "SearchLogs", Workload: kind,
						Mechanism: "LRM", Param: "gamma", Value: gamma,
						Epsilon: eps, AvgSqErr: m.AvgSquaredError, Seconds: prepSec,
					})
				}
				return nil
			})
		}
	}
	if err := runPoints(points); err != nil {
		return nil, err
	}
	return flatten(results), nil
}

func flatten(results [][]Row) []Row {
	var rows []Row
	for _, r := range results {
		rows = append(rows, r...)
	}
	return rows
}

// Figure3 reproduces "Effect of varying r": error and time as the inner
// dimension sweeps over ratio·rank(W).
func Figure3(cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	data, err := searchLogsMerged(cfg, cfg.defaultN())
	if err != nil {
		return nil, err
	}
	ratios := cfg.rankRatios()
	results := make([][]Row, len(workloadKinds)*len(ratios))
	var points []func() error
	for ki, kind := range workloadKinds {
		w, err := buildWorkload(kind, cfg.defaultM(), cfg.defaultN(),
			sDefault(cfg.defaultM(), cfg.defaultN()), rng.New(cfg.Seed+int64(ki)*37))
		if err != nil {
			return nil, err
		}
		rank := w.Rank()
		for ri, ratio := range ratios {
			slot := ki*len(ratios) + ri
			kind, ratio := kind, ratio
			points = append(points, func() error {
				r := int(math.Ceil(ratio * float64(rank)))
				if r < 1 {
					r = 1
				}
				opts := cfg.lrmOptions()
				opts.Rank = r
				start := time.Now()
				prepared, err := mechanism.LRM{Options: opts}.Prepare(w)
				if err != nil {
					return fmt.Errorf("Figure3 %s ratio=%g: %w", kind, ratio, err)
				}
				prepSec := time.Since(start).Seconds()
				for _, eps := range cfg.epsilonsFig23() {
					m, err := metrics.EvaluatePrepared(prepared, w, data, privacy.Epsilon(eps), cfg.Trials, rng.New(cfg.Seed+11))
					if err != nil {
						return err
					}
					results[slot] = append(results[slot], Row{
						Figure: "Fig3", Dataset: "SearchLogs", Workload: kind,
						Mechanism: "LRM", Param: "ratio", Value: ratio,
						Epsilon: eps, AvgSqErr: m.AvgSquaredError, Seconds: prepSec,
					})
				}
				return nil
			})
		}
	}
	if err := runPoints(points); err != nil {
		return nil, err
	}
	return flatten(results), nil
}

// domainSweep is the shared skeleton of Figures 4–6: error vs domain size
// n for one workload kind across all datasets and mechanisms.
func domainSweep(cfg Config, figure, kind string) ([]Row, error) {
	cfg = cfg.withDefaults()
	datasets, err := cfg.datasetsFor()
	if err != nil {
		return nil, err
	}
	eps := privacy.Epsilon(cfg.epsilonMain())
	sizes := cfg.domainSizes()
	results := make([][]Row, len(datasets)*len(sizes))
	var points []func() error
	for di, d := range datasets {
		for ni, n := range sizes {
			if n > d.Len() {
				continue
			}
			slot := di*len(sizes) + ni
			d, n, di, ni := d, n, di, ni
			points = append(points, func() error {
				merged := d.Merge(n)
				m := cfg.defaultM()
				w, err := buildWorkload(kind, m, n, sDefault(m, n), rng.New(cfg.Seed+int64(di*100+ni)))
				if err != nil {
					return err
				}
				mechs := []mechanism.Mechanism{
					mechanism.LaplaceData{},
					mechanism.Wavelet{},
					mechanism.Hierarchical{},
					mechanism.LRM{Options: cfg.lrmOptions()},
				}
				if n <= cfg.mmMaxDomain() {
					mechs = append(mechs, mechanism.MatrixMechanism{MaxIter: 40})
				}
				for _, mech := range mechs {
					meas, err := metrics.Evaluate(mech, w, merged.Counts, eps, cfg.Trials, rng.New(cfg.Seed+13))
					if err != nil {
						return fmt.Errorf("%s %s %s n=%d: %w", figure, d.Name, mech.Name(), n, err)
					}
					results[slot] = append(results[slot], Row{
						Figure: figure, Dataset: d.Name, Workload: kind,
						Mechanism: mech.Name(), Param: "n", Value: float64(n),
						Epsilon: float64(eps), AvgSqErr: meas.AvgSquaredError, Seconds: meas.PrepareSeconds,
					})
				}
				return nil
			})
		}
	}
	if err := runPoints(points); err != nil {
		return nil, err
	}
	return flatten(results), nil
}

// Figure4 reproduces "Effect of varying domain size n on workload
// WDiscrete with ε = 0.1" across the three datasets and all mechanisms.
func Figure4(cfg Config) ([]Row, error) { return domainSweep(cfg, "Fig4", "WDiscrete") }

// Figure5 reproduces the domain-size sweep on WRange.
func Figure5(cfg Config) ([]Row, error) { return domainSweep(cfg, "Fig5", "WRange") }

// Figure6 reproduces the domain-size sweep on WRelated.
func Figure6(cfg Config) ([]Row, error) { return domainSweep(cfg, "Fig6", "WRelated") }

// querySweep is the shared skeleton of Figures 7–8: error vs batch size m
// (MM excluded, as in the paper).
func querySweep(cfg Config, figure, kind string) ([]Row, error) {
	cfg = cfg.withDefaults()
	datasets, err := cfg.datasetsFor()
	if err != nil {
		return nil, err
	}
	eps := privacy.Epsilon(cfg.epsilonMain())
	n := cfg.defaultN()
	sizes := cfg.querySizes()
	results := make([][]Row, len(datasets)*len(sizes))
	var points []func() error
	for di, d := range datasets {
		if n > d.Len() {
			continue
		}
		merged := d.Merge(n)
		for mi, m := range sizes {
			slot := di*len(sizes) + mi
			d, m, di, mi := d, m, di, mi
			points = append(points, func() error {
				w, err := buildWorkload(kind, m, n, sDefault(m, n), rng.New(cfg.Seed+int64(di*100+mi)*3))
				if err != nil {
					return err
				}
				for _, mech := range []mechanism.Mechanism{
					mechanism.LaplaceData{},
					mechanism.Wavelet{},
					mechanism.Hierarchical{},
					mechanism.LRM{Options: cfg.lrmOptions()},
				} {
					meas, err := metrics.Evaluate(mech, w, merged.Counts, eps, cfg.Trials, rng.New(cfg.Seed+17))
					if err != nil {
						return fmt.Errorf("%s %s %s m=%d: %w", figure, d.Name, mech.Name(), m, err)
					}
					results[slot] = append(results[slot], Row{
						Figure: figure, Dataset: d.Name, Workload: kind,
						Mechanism: mech.Name(), Param: "m", Value: float64(m),
						Epsilon: float64(eps), AvgSqErr: meas.AvgSquaredError, Seconds: meas.PrepareSeconds,
					})
				}
				return nil
			})
		}
	}
	if err := runPoints(points); err != nil {
		return nil, err
	}
	return flatten(results), nil
}

// Figure7 reproduces "Effect of number of queries m on workload WRange".
func Figure7(cfg Config) ([]Row, error) { return querySweep(cfg, "Fig7", "WRange") }

// Figure8 reproduces the query-size sweep on WRelated.
func Figure8(cfg Config) ([]Row, error) { return querySweep(cfg, "Fig8", "WRelated") }

// Figure9 reproduces "Effect of parameter s": error vs the base size of
// WRelated, s = ratio·min(m,n), which controls rank(W).
func Figure9(cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	datasets, err := cfg.datasetsFor()
	if err != nil {
		return nil, err
	}
	eps := privacy.Epsilon(cfg.epsilonMain())
	n := cfg.defaultN()
	m := cfg.defaultM()
	ratios := cfg.sRatios()
	results := make([][]Row, len(datasets)*len(ratios))
	var points []func() error
	for di, d := range datasets {
		if n > d.Len() {
			continue
		}
		merged := d.Merge(n)
		for si, ratio := range ratios {
			slot := di*len(ratios) + si
			d, ratio, di, si := d, ratio, di, si
			points = append(points, func() error {
				s := int(math.Round(ratio * float64(min(m, n))))
				if s < 1 {
					s = 1
				}
				w, err := buildWorkload("WRelated", m, n, s, rng.New(cfg.Seed+int64(di*100+si)*7))
				if err != nil {
					return err
				}
				for _, mech := range []mechanism.Mechanism{
					mechanism.LaplaceData{},
					mechanism.Wavelet{},
					mechanism.Hierarchical{},
					mechanism.LRM{Options: cfg.lrmOptions()},
				} {
					meas, err := metrics.Evaluate(mech, w, merged.Counts, eps, cfg.Trials, rng.New(cfg.Seed+19))
					if err != nil {
						return fmt.Errorf("Fig9 %s %s s=%d: %w", d.Name, mech.Name(), s, err)
					}
					results[slot] = append(results[slot], Row{
						Figure: "Fig9", Dataset: d.Name, Workload: "WRelated",
						Mechanism: mech.Name(), Param: "s_ratio", Value: ratio,
						Epsilon: float64(eps), AvgSqErr: meas.AvgSquaredError, Seconds: meas.PrepareSeconds,
					})
				}
				return nil
			})
		}
	}
	if err := runPoints(points); err != nil {
		return nil, err
	}
	return flatten(results), nil
}

// Run dispatches a figure by number (2–9).
func Run(figure int, cfg Config) ([]Row, error) {
	switch figure {
	case 2:
		return Figure2(cfg)
	case 3:
		return Figure3(cfg)
	case 4:
		return Figure4(cfg)
	case 5:
		return Figure5(cfg)
	case 6:
		return Figure6(cfg)
	case 7:
		return Figure7(cfg)
	case 8:
		return Figure8(cfg)
	case 9:
		return Figure9(cfg)
	}
	return nil, fmt.Errorf("experiments: no figure %d (want 2-9)", figure)
}

// Figures lists the figure numbers Run accepts.
func Figures() []int { return []int{2, 3, 4, 5, 6, 7, 8, 9} }

// searchLogsMerged builds the Search Logs dataset merged to n bins.
func searchLogsMerged(cfg Config, n int) ([]float64, error) {
	d := dataset.SearchLogs(dataset.SearchLogsSize, rng.New(cfg.Seed+101))
	if n > d.Len() {
		return nil, fmt.Errorf("experiments: n=%d exceeds Search Logs size", n)
	}
	return d.Merge(n).Counts, nil
}
