package mat

import (
	"errors"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization is attempted on a
// matrix that is not symmetric positive definite.
var ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")

// Cholesky holds the lower-triangular factor of A = L·Lᵀ.
type Cholesky struct {
	l *Dense
}

// FactorCholesky computes the Cholesky factorization of a symmetric
// positive definite matrix. Only the lower triangle of a is read.
func FactorCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, errors.New("mat: FactorCholesky needs a square matrix")
	}
	return FactorCholeskyTo(New(a.rows, a.rows), a)
}

// FactorCholeskyTo is FactorCholesky with caller-provided n×n factor
// storage, so hot loops can refactor without allocating. dst must not
// alias a; the returned Cholesky wraps dst and is valid until dst is
// next reused.
func FactorCholeskyTo(dst, a *Dense) (*Cholesky, error) {
	if err := factorCholeskyInto(dst, a); err != nil {
		return nil, err
	}
	return &Cholesky{l: dst}, nil
}

// factorCholeskyInto writes the lower-triangular factor of a into dst
// without allocating (the value-typed Cholesky{l: dst} wrapper stays on
// the caller's stack).
func factorCholeskyInto(dst, a *Dense) error {
	if a.rows != a.cols {
		return errors.New("mat: FactorCholeskyTo needs a square matrix")
	}
	checkShape("FactorCholeskyTo", dst, a.rows, a.rows)
	noAlias("FactorCholeskyTo", dst, a)
	n := a.rows
	l := dst
	zero(l.data)
	for j := 0; j < n; j++ {
		var d float64 = a.data[j*n+j]
		lrowj := l.RawRow(j)
		for k := 0; k < j; k++ {
			d -= lrowj[k] * lrowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrNotSPD
		}
		ljj := math.Sqrt(d)
		lrowj[j] = ljj
		inv := 1 / ljj
		for i := j + 1; i < n; i++ {
			lrowi := l.RawRow(i)
			s := a.data[i*n+j]
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			lrowi[j] = s * inv
		}
	}
	return nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }

// SolveVec solves A·x = b using the factorization.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	n := c.l.rows
	if len(b) != n {
		return nil, errors.New("mat: Cholesky SolveVec length mismatch")
	}
	x := make([]float64, n)
	copy(x, b)
	c.solveVecInPlace(x)
	return x, nil
}

// solveVecInPlace overwrites x with A⁻¹·x. Both triangular sweeps write
// each element after its last read, so no scratch is needed.
func (c *Cholesky) solveVecInPlace(x []float64) {
	n := c.l.rows
	// Forward: L·y = b.
	for i := 0; i < n; i++ {
		row := c.l.RawRow(i)
		s := x[i]
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	// Backward: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.data[k*n+i] * x[k]
		}
		x[i] = s / c.l.data[i*n+i]
	}
}

// Solve solves A·X = B using the factorization.
func (c *Cholesky) Solve(b *Dense) (*Dense, error) {
	n := c.l.rows
	if b.rows != n {
		return nil, errors.New("mat: Cholesky Solve dimension mismatch")
	}
	x := New(n, b.cols)
	for j := 0; j < b.cols; j++ {
		col, err := c.SolveVec(b.Col(j))
		if err != nil {
			return nil, err
		}
		x.SetCol(j, col)
	}
	return x, nil
}

// SolveSPD solves A·X = B for symmetric positive definite A.
func SolveSPD(a, b *Dense) (*Dense, error) {
	c, err := FactorCholesky(a)
	if err != nil {
		return nil, err
	}
	return c.Solve(b)
}

// SolveRightSPD solves X·A = B for symmetric positive definite A, i.e.
// X = B·A⁻¹, by solving Aᵀ·Xᵀ = Bᵀ and exploiting A's symmetry. It is
// the operation needed by the paper's closed-form B-update (Eq. 9).
func SolveRightSPD(b, a *Dense) (*Dense, error) {
	out := New(b.rows, a.rows)
	if err := SolveRightSPDTo(out, b, a, New(a.rows, a.rows)); err != nil {
		return nil, err
	}
	return out, nil
}

// SolveRightSPDTo is SolveRightSPD writing into dst (shaped like b) with
// caller-provided n×n Cholesky factor storage lwork, performing no
// allocation. dst may be b itself (rows are solved in place), but a dst
// that only partially overlaps b's storage panics — the skipped copy
// would read half-corrupted rows. lwork must not overlap any other
// argument (the factorization would scribble over it mid-solve).
func SolveRightSPDTo(dst, b, a, lwork *Dense) error {
	if b.cols != a.rows {
		return errors.New("mat: SolveRightSPDTo dimension mismatch")
	}
	checkShape("SolveRightSPDTo", dst, b.rows, b.cols)
	if sharesStorage(lwork, a) || sharesStorage(lwork, b) || sharesStorage(lwork, dst) {
		panic("mat: SolveRightSPDTo lwork overlaps an operand")
	}
	inPlace := dst == b || (len(dst.data) > 0 && len(b.data) > 0 && &dst.data[0] == &b.data[0])
	if !inPlace && sharesStorage(dst, b) {
		panic("mat: SolveRightSPDTo destination partially overlaps b")
	}
	if err := factorCholeskyInto(lwork, a); err != nil {
		return err
	}
	c := Cholesky{l: lwork}
	for i := 0; i < b.rows; i++ {
		row := dst.RawRow(i)
		if !inPlace {
			copy(row, b.RawRow(i))
		}
		c.solveVecInPlace(row)
	}
	return nil
}
