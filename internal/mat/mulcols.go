package mat

// MulColsTo stores the product a·b into dst, like MulTo, with one extra
// guarantee that MulTo does not make: every column j of the result is
// bit-identical to the matrix-vector product MulVecTo(·, a, b column j).
//
// It exists for multi-RHS answering paths (mechanism.BatchAnswerer) whose
// contract is "AnswerMany equals looping Answer per data vector, bit for
// bit". Answer paths compute with MulVecTo — a plain dot product per
// output element, separate multiply and add in ascending k — so the
// batched product must round identically. The default AVX2+FMA
// micro-kernel does not (fused multiply-add skips the intermediate
// rounding), so MulColsTo runs the full cache-blocked packed pipeline —
// panel packing, the fixed tile grid, pool scheduling, deterministic
// k-order — with the mul+add kernel family instead: a vectorized AVX
// kernel whose every step is a separate VMULPD and VADDPD on capable
// hardware (gemm_amd64.s), the scalar kernels elsewhere, both rounding
// exactly like the dot product. The cost over MulTo is one extra µop per
// madd; the win over a loop of MulVecTo calls is the same as any GEMM's:
// the right operand is packed once instead of re-streamed per column,
// and the register blocking keeps many accumulator chains in flight
// where a dot product has one.
//
// dst must not alias a or b, and must already be a.Rows()×b.Cols().
func MulColsTo(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		dimPanic("MulColsTo", a, b)
	}
	checkShape("MulColsTo", dst, a.rows, b.cols)
	noAlias("MulColsTo", dst, a)
	noAlias("MulColsTo", dst, b)
	gemmMain(dst, a.rows, b.cols, a.cols,
		aView{data: a.data, row: a.cols, k: 1},
		b.data, b.cols, 1, false, true)
	return dst
}

// MulCols is the allocating form of MulColsTo.
func MulCols(a, b *Dense) *Dense {
	if a.cols != b.rows {
		dimPanic("MulCols", a, b)
	}
	return MulColsTo(New(a.rows, b.cols), a, b)
}
