package engine

import (
	"fmt"

	"lrm/internal/core"
	"lrm/internal/mat"
	"lrm/internal/mechanism"
	"lrm/internal/privacy"
	"lrm/internal/workload"
)

// Row-sharded prepare (Options.ShardRows): a workload with more queries
// than one ALM decomposition should swallow is split into row blocks that
// prepare concurrently, cache independently, and answer as one
// concatenated release.
//
// Each shard is an ordinary workload keyed by its own content
// fingerprint, so it flows through the engine's existing LRU +
// singleflight + disk-cache machinery unchanged — two sharded workloads
// sharing a row block share that shard's preparation, and a restart
// restores shards from disk like any other workload.
//
// Privacy composes sequentially: every shard answers the same database,
// so a request at per-histogram budget ε releases each of the k shards at
// ε/k, keeping the total at exactly ε (privacy.ComposeSequential over k
// copies of ε/k). Seeded requests remain deterministic and replayable:
// histogram i of shard s draws from the stream seeded Seed + s·B + i
// (B = batch size), so distinct (shard, histogram) pairs never share a
// stream — correlated noise across shards would break the composition
// argument.

// shardPlanLimit bounds the plan memo; past it the memo resets (the cost
// is re-hashing shard fingerprints on the next request per live
// workload). Plans hold only row bounds and fingerprint strings — never
// matrix data — so the memo's footprint stays a few kilobytes no matter
// how large the sharded workloads are.
const shardPlanLimit = 64

// shardPlan is the cached row partition of one sharded workload: the
// row bounds of each shard and its content fingerprint.
type shardPlan struct {
	bounds []shardBounds
	fps    []string
}

type shardBounds struct{ lo, hi int }

// shardWorkload materializes shard s of w as its own workload, copying
// the rows. Called only when a shard must actually be prepared (cache
// and disk miss) — the copy is what non-LRM Prepared implementations
// may retain, and retaining a slice view would pin the whole parent
// matrix instead.
func shardWorkload(w *workload.Workload, b shardBounds, s int) *workload.Workload {
	return &workload.Workload{
		W:    w.W.Slice(b.lo, b.hi, 0, w.Domain()),
		Name: fmt.Sprintf("%s#%d", w.Name, s),
	}
}

// planFor returns the row partition of w, memoized by the parent
// workload's fingerprint. Shard fingerprints hash zero-copy row-range
// views (a row block of a row-major matrix is contiguous), so building a
// plan allocates no matrix data.
func (e *Engine) planFor(fp string, w *workload.Workload) *shardPlan {
	e.shardMu.Lock()
	pl, ok := e.shardPlans[fp]
	e.shardMu.Unlock()
	if ok {
		return pl
	}
	m, n := w.Queries(), w.Domain()
	k := (m + e.shardRows - 1) / e.shardRows
	pl = &shardPlan{bounds: make([]shardBounds, k), fps: make([]string, k)}
	raw := w.W.RawData()
	for s := 0; s < k; s++ {
		lo := s * e.shardRows
		hi := min(lo+e.shardRows, m)
		pl.bounds[s] = shardBounds{lo: lo, hi: hi}
		view := mat.NewFromData(hi-lo, n, raw[lo*n:hi*n])
		pl.fps[s] = core.Fingerprint(view)
	}
	e.shardMu.Lock()
	if len(e.shardPlans) >= shardPlanLimit {
		e.shardPlans = make(map[string]*shardPlan)
	}
	// Two goroutines may have built the plan concurrently; both plans
	// are identical, so last-write-wins is fine.
	e.shardPlans[fp] = pl
	e.shardMu.Unlock()
	return pl
}

// answerSharded serves one request through the row partition: shards
// prepare concurrently on the shared pool, answer at ε/k each, and their
// releases concatenate in row order.
func (e *Engine) answerSharded(fp string, req Request) ([][]float64, error) {
	e.sharded.Add(1)
	plan := e.planFor(fp, req.Workload)
	k := len(plan.fps)
	epsShard := privacy.Epsilon(float64(req.Eps) / float64(k))
	if err := epsShard.Validate(); err != nil {
		return nil, fmt.Errorf("engine: per-shard epsilon %v over %d shards: %w", float64(req.Eps), k, err)
	}

	// The request's budget covers the composed spend: ε per histogram
	// (k shards × ε/k). Spending it up front keeps the accounting
	// identical to the unsharded path and fails the whole request before
	// any shard releases noise.
	if req.Budget != 0 {
		budget, err := privacy.NewBudget(req.Budget)
		if err != nil {
			return nil, err
		}
		for range req.Histograms {
			if err := budget.Spend(req.Eps); err != nil {
				return nil, err
			}
		}
	}

	// Prepare every shard first, concurrently: cold shards decompose in
	// parallel on the shared pool (each decomposition's own GEMM tiles
	// draw from the same pool, so nested parallelism degrades gracefully),
	// warm shards are pure cache lookups — the shard rows are copied out
	// of the parent only when a shard actually needs preparing. Waiters
	// on a coalesced flight block only on flights whose owner is actively
	// running, so the dynamic claiming cannot deadlock even when shards
	// share a fingerprint.
	preps := make([]mechanism.Prepared, k)
	errs := make([]error, k)
	mat.ParallelFor(k, func(s int) {
		if p, ok := e.cached(plan.fps[s]); ok {
			preps[s] = p
			return
		}
		preps[s], errs[s] = e.prepared(plan.fps[s], shardWorkload(req.Workload, plan.bounds[s], s))
	})
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: preparing shard %d/%d: %w", s, k, err)
		}
	}

	// Commit point, mirroring the unsharded path: every shard is
	// prepared, noise is next. A cancelled caller is abandoned here and
	// the tenant's durable spend — the full composed ε, charged once —
	// happens only for requests that go on to release.
	if err := ctxErr(req.Context); err != nil {
		return nil, err
	}
	if err := e.spendTenant(req); err != nil {
		return nil, err
	}

	b := len(req.Histograms)
	out := make([][]float64, b)
	for i := range out {
		out[i] = make([]float64, req.Workload.Queries())
	}
	shardOut := make([][]float64, b)
	// The n×B column matrix is identical for every shard; build it once
	// on first use and reuse it across the loop.
	var cols *mat.Dense
	row := 0
	for s := 0; s < k; s++ {
		for i := range shardOut {
			shardOut[i] = nil
		}
		var err error
		if req.Seed == 0 {
			if ba, ok := preps[s].(mechanism.BatchAnswerer); ok && b > 1 {
				if cols == nil {
					cols = histogramColumns(req.Histograms)
				}
				err = e.answerMany(ba, cols, epsShard, nil, shardOut)
			} else {
				seeds := make([]int64, b)
				for i := range seeds {
					seeds[i] = e.nextSeed()
				}
				err = e.fanOut(preps[s], req.Histograms, epsShard, nil, seeds, shardOut)
			}
		} else {
			seeds := make([]int64, b)
			for i := range seeds {
				seeds[i] = req.Seed + int64(s*b+i)
			}
			err = e.fanOut(preps[s], req.Histograms, epsShard, nil, seeds, shardOut)
		}
		if err != nil {
			return nil, fmt.Errorf("engine: answering shard %d/%d: %w", s, k, err)
		}
		rows := plan.bounds[s].hi - plan.bounds[s].lo
		for i := range out {
			copy(out[i][row:row+rows], shardOut[i])
		}
		row += rows
	}
	e.answers.Add(uint64(b))
	return out, nil
}
