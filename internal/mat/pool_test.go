package mat

import (
	"runtime"
	"sync"
	"testing"
)

// poolReinitForTest tears down the pool bookkeeping so the next dispatch
// re-runs poolInit under the current GOMAXPROCS. Workers started by a
// previous init keep ranging over their old channel and simply never
// receive work again — harmless in a test process, unacceptable anywhere
// else, which is why this lives in a _test file.
func poolReinitForTest() {
	pool.once = sync.Once{}
	pool.workers = 0
	pool.tasks = nil
}

// TestPoolMultiWorkerPath forces a real multi-worker pool even on
// single-CPU machines (where GOMAXPROCS=1 normally degrades every
// dispatch to the inline serial loop, leaving poolInit, the task
// channel, and the wake protocol unexercised by CI). It checks that
// pool-dispatched products match the serial path bit-for-bit, that
// concurrent submitters all complete (no lost wakeups or stuck done
// signals), and that nested dispatch cannot deadlock.
func TestPoolMultiWorkerPath(t *testing.T) {
	oldProcs := runtime.GOMAXPROCS(4)
	poolReinitForTest()
	defer func() {
		runtime.GOMAXPROCS(oldProcs)
		poolReinitForTest()
	}()
	savedThresh := setParallelThreshold(1)
	defer setParallelThreshold(savedThresh)

	a := randDenseSeed(t, 96, 64, 301)
	b := randDenseSeed(t, 64, 96, 302)

	setParallelThreshold(1 << 62)
	wantMul := Mul(a, b)
	wantGramT := GramT(a)
	setParallelThreshold(1)

	if pool.workers == 0 {
		// Force init through a dispatch, then confirm workers exist.
		_ = Mul(a, b)
	}
	if pool.workers != 3 {
		t.Fatalf("pool started %d background workers under GOMAXPROCS=4, want 3", pool.workers)
	}

	// Serial-vs-pool bit identity through the real channel/wake path.
	if got := Mul(a, b); !got.Equal(wantMul) {
		t.Fatal("pool-dispatched Mul disagrees with serial path")
	}
	if got := GramT(a); !got.Equal(wantGramT) {
		t.Fatal("pool-dispatched GramT disagrees with serial path")
	}

	// Concurrent submitters racing for the same workers: every dispatch
	// must complete (the submitter always helps, so a saturated queue can
	// only slow a job down, never strand it).
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if got := Mul(a, b); !got.Equal(wantMul) {
					t.Error("concurrent pool Mul mismatch")
					return
				}
			}
		}()
	}
	wg.Wait()

	// Nested dispatch: a tile body that itself schedules on the pool.
	done := make([]int, 8)
	ParallelFor(8, func(i int) {
		inner := make([]int, 4)
		ParallelFor(4, func(j int) { inner[j] = j + 1 })
		s := 0
		for _, v := range inner {
			s += v
		}
		done[i] = s
	})
	for i, v := range done {
		if v != 10 {
			t.Fatalf("nested ParallelFor: slot %d = %d, want 10", i, v)
		}
	}
}
