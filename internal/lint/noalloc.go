package lint

import (
	"go/ast"
	"go/types"
)

// NoAlloc checks functions annotated //lrm:noalloc for syntactic
// allocation constructs. The annotation is the static face of the
// testing.AllocsPerRun pins in internal/core/alloc_test.go: the pins
// prove a whole call tree allocates nothing, this analyzer explains the
// guarantee line by line and catches regressions at the allocation site
// instead of as an opaque count mismatch.
//
// The contract is per-function and syntactic: the annotated body must
// not contain make, new, append, map/slice composite literals,
// &-composite literals, function literals (closures capture and escape),
// or go statements. Callees are not traversed — a callee that allocates
// is annotated (or pinned) itself.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: "checks //lrm:noalloc-annotated functions for allocation " +
		"constructs: make, new, append, map/slice/&-composite literals, " +
		"escaping closures, and go statements",
	Run: runNoAlloc,
}

// noallocDirective marks a function whose body must stay free of
// allocation constructs.
const noallocDirective = "//lrm:noalloc"

func runNoAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd, noallocDirective) {
				continue
			}
			checkNoAllocBody(pass, fd)
		}
	}
	return nil
}

func checkNoAllocBody(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			switch calleeBuiltin(pass.Info, node) {
			case "make":
				pass.Report(node.Pos(), "%s is marked %s but calls make", name, noallocDirective)
			case "new":
				pass.Report(node.Pos(), "%s is marked %s but calls new", name, noallocDirective)
			case "append":
				pass.Report(node.Pos(), "%s is marked %s but calls append (growth reallocates)", name, noallocDirective)
			}
		case *ast.CompositeLit:
			switch pass.Info.Types[node].Type.Underlying().(type) {
			case *types.Map:
				pass.Report(node.Pos(), "%s is marked %s but builds a map literal", name, noallocDirective)
			case *types.Slice:
				pass.Report(node.Pos(), "%s is marked %s but builds a slice literal", name, noallocDirective)
			}
		case *ast.UnaryExpr:
			if node.Op.String() == "&" {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					pass.Report(node.Pos(), "%s is marked %s but takes the address of a composite literal (escapes to the heap)", name, noallocDirective)
				}
			}
		case *ast.FuncLit:
			pass.Report(node.Pos(), "%s is marked %s but contains a function literal (closures capture and may escape)", name, noallocDirective)
		case *ast.GoStmt:
			pass.Report(node.Pos(), "%s is marked %s but starts a goroutine", name, noallocDirective)
		}
		return true
	})
}
