package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"lrm/internal/mat"
)

// WriteCSV writes the workload matrix as CSV: one query per row, n
// coefficient columns. The format round-trips through ReadCSV and is the
// format cmd/lrmrun consumes.
func (w *Workload) WriteCSV(out io.Writer) error {
	cw := csv.NewWriter(out)
	rec := make([]string, w.Domain())
	for i := 0; i < w.Queries(); i++ {
		row := w.W.RawRow(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a workload written by WriteCSV. Every row must have the
// same number of coefficients.
func ReadCSV(name string, in io.Reader) (*Workload, error) {
	cr := csv.NewReader(in)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("workload: empty csv")
	}
	n := len(records[0])
	w := mat.New(len(records), n)
	for i, rec := range records {
		if len(rec) != n {
			return nil, fmt.Errorf("workload: row %d has %d columns, want %d", i, len(rec), n)
		}
		for j, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: row %d column %d: %w", i, j, err)
			}
			w.Set(i, j, v)
		}
	}
	return FromMatrix(name, w), nil
}
