package mat

import (
	"testing"
)

// TestMulColsToColumnBitIdentity is the load-bearing guarantee of
// MulColsTo: every column of the batched product equals the MulVecTo
// matrix-vector product of that column, bit for bit, across shapes that
// exercise every scalar kernel (full 4×8 blocks, the 1×8 short-matrix
// row kernel, partial trailing panels, single columns) on both the
// serial and the pool-scheduled dispatch path.
func TestMulColsToColumnBitIdentity(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{3, 5, 1},   // single column: partial panel, short matrix
		{2, 9, 5},   // fewer rows than gemmMR, partial panel
		{4, 8, 8},   // exactly one full panel of 4×8 blocks
		{7, 13, 11}, // row tail + partial trailing panel
		{64, 77, 64},
		{65, 129, 70}, // odd everything
	}
	for _, sh := range shapes {
		a := randDenseSeed(t, sh.m, sh.k, int64(100+3*sh.m+5*sh.k+7*sh.n))
		b := randDenseSeed(t, sh.k, sh.n, int64(200+11*sh.m+13*sh.k+17*sh.n))
		for _, threshold := range []int64{1 << 62, 0} { // force serial, then parallel
			old := setParallelThreshold(threshold)
			got := MulColsTo(New(sh.m, sh.n), a, b)
			setParallelThreshold(old)
			col := make([]float64, sh.k)
			want := make([]float64, sh.m)
			for j := 0; j < sh.n; j++ {
				for i := 0; i < sh.k; i++ {
					col[i] = b.At(i, j)
				}
				MulVecTo(want, a, col)
				for i := 0; i < sh.m; i++ {
					if got.At(i, j) != want[i] {
						t.Fatalf("%d×%d·%d×%d (threshold %d): column %d row %d = %g, MulVecTo says %g",
							sh.m, sh.k, sh.k, sh.n, threshold, j, i, got.At(i, j), want[i])
					}
				}
			}
		}
	}
}

// TestMulColsToMatchesMul checks the batched product agrees with the
// default GEMM to numerical accuracy (they may differ in the last ulps on
// FMA hardware, never more).
func TestMulColsToMatchesMul(t *testing.T) {
	a := randDenseSeed(t, 33, 47, 301)
	b := randDenseSeed(t, 47, 29, 302)
	got := MulCols(a, b)
	want := Mul(a, b)
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("MulCols diverges from Mul beyond rounding")
	}
}

// TestMulColsToValidation pins the shape and aliasing panics.
func TestMulColsToValidation(t *testing.T) {
	a, b := New(3, 4), New(4, 2)
	mulColsMustPanic(t, "dim mismatch", func() { MulColsTo(New(3, 2), a, New(5, 2)) })
	mulColsMustPanic(t, "bad dst shape", func() { MulColsTo(New(2, 2), a, b) })
	mulColsMustPanic(t, "aliased dst", func() {
		d := NewFromData(3, 2, a.RawData()[:6])
		MulColsTo(d, a, b)
	})
}

func mulColsMustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", name)
		}
	}()
	fn()
}
