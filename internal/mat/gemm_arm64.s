// NEON (ASIMD) micro-kernels for the packed GEMM layer (gemm.go).
// ASIMD is baseline on arm64, so there is no runtime detection — only
// the noasm build tag (CI's portable-fallback leg) compiles these out.
//
// Both kernels compute the same 4×8 tile as the amd64 kernels, with the
// same operand addressing, so gemm.go's tile walk is identical on every
// architecture. The 8 output columns live in four 2-lane double vectors
// per row; sixteen V registers hold the whole tile.

//go:build arm64 && !noasm

#include "textflag.h"

// func gemmKernel4x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64)
//
// Computes the 4×8 output block
//
//	C[i][j] = Σ_{t=0..k-1} A(i,t) · B(t,j)   for i in 0..3, j in 0..7
//
// overwriting C. Element A(i,t) lives at a + i·aRowStride + t·aKStride;
// the 8 packed values for step t at bp + t·bKStride; C rows cRowStride
// bytes apart — exactly the amd64 kernel's contract.
//
// Each C element is one fused multiply-add chain (VFMLA) in ascending t.
// IEEE-754 FMA rounds the product-and-add once per step independent of
// lane width, so this kernel is bit-identical to the AVX2 4×8 and
// AVX-512 8×8 FMA kernels — the cross-architecture half of the repo's
// determinism story.
TEXT ·gemmKernel4x8(SB), NOSPLIT, $0-64
	MOVD k+0(FP), R0
	MOVD a+8(FP), R1
	MOVD aRowStride+16(FP), R5
	MOVD aKStride+24(FP), R8
	MOVD bp+32(FP), R2
	MOVD bKStride+40(FP), R9
	MOVD c+48(FP), R3
	MOVD cRowStride+56(FP), R10

	ADD R5, R5, R6 // 2·aRowStride
	ADD R5, R6, R7 // 3·aRowStride

	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	VEOR V4.B16, V4.B16, V4.B16
	VEOR V5.B16, V5.B16, V5.B16
	VEOR V6.B16, V6.B16, V6.B16
	VEOR V7.B16, V7.B16, V7.B16
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16

	CBZ R0, store

loop:
	VLD1 (R2), [V16.D2, V17.D2, V18.D2, V19.D2] // B(t, 0:8)
	ADD  R9, R2

	FMOVD (R1), F20        // A(0,t)
	VDUP  V20.D[0], V20.D2
	VFMLA V16.D2, V20.D2, V0.D2
	VFMLA V17.D2, V20.D2, V1.D2
	VFMLA V18.D2, V20.D2, V2.D2
	VFMLA V19.D2, V20.D2, V3.D2

	FMOVD (R1)(R5), F20    // A(1,t)
	VDUP  V20.D[0], V20.D2
	VFMLA V16.D2, V20.D2, V4.D2
	VFMLA V17.D2, V20.D2, V5.D2
	VFMLA V18.D2, V20.D2, V6.D2
	VFMLA V19.D2, V20.D2, V7.D2

	FMOVD (R1)(R6), F20    // A(2,t)
	VDUP  V20.D[0], V20.D2
	VFMLA V16.D2, V20.D2, V8.D2
	VFMLA V17.D2, V20.D2, V9.D2
	VFMLA V18.D2, V20.D2, V10.D2
	VFMLA V19.D2, V20.D2, V11.D2

	FMOVD (R1)(R7), F20    // A(3,t)
	VDUP  V20.D[0], V20.D2
	VFMLA V16.D2, V20.D2, V12.D2
	VFMLA V17.D2, V20.D2, V13.D2
	VFMLA V18.D2, V20.D2, V14.D2
	VFMLA V19.D2, V20.D2, V15.D2

	ADD  R8, R1
	SUBS $1, R0, R0
	BNE  loop

store:
	VST1 [V0.D2, V1.D2, V2.D2, V3.D2], (R3)
	ADD  R10, R3
	VST1 [V4.D2, V5.D2, V6.D2, V7.D2], (R3)
	ADD  R10, R3
	VST1 [V8.D2, V9.D2, V10.D2, V11.D2], (R3)
	ADD  R10, R3
	VST1 [V12.D2, V13.D2, V14.D2, V15.D2], (R3)
	RET

// func gemmKernelMulAdd4x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64)
//
// The column-exact sibling: each step must round the product and the sum
// separately (the arithmetic of the scalar kernels and MulVecTo dot
// products). The Go assembler has no vector FMUL/FADD for arm64, so both
// roundings are synthesized from VFMLA:
//
//	tmp = fma(A, B, -0)   — -0 + x == x for every x including ±0, so
//	                        this is exactly the separately-rounded
//	                        product, zero signs preserved (seeding with
//	                        +0 would turn a -0 product into +0);
//	acc = fma(tmp, 1, acc) — tmp·1 is exact, so this is exactly the
//	                        separately-rounded add.
//
// One extra move and FMLA per madd versus the fused kernel — the same
// price the amd64 tier pays in µops for its VMULPD+VADDPD pairs.
TEXT ·gemmKernelMulAdd4x8(SB), NOSPLIT, $0-64
	MOVD k+0(FP), R0
	MOVD a+8(FP), R1
	MOVD aRowStride+16(FP), R5
	MOVD aKStride+24(FP), R8
	MOVD bp+32(FP), R2
	MOVD bKStride+40(FP), R9
	MOVD c+48(FP), R3
	MOVD cRowStride+56(FP), R10

	ADD R5, R5, R6 // 2·aRowStride
	ADD R5, R6, R7 // 3·aRowStride

	FMOVD $1.0, F30          // ones vector for the exact ·1 second FMLA
	VDUP  V30.D[0], V30.D2
	MOVD  $1<<63, R4         // -0.0 bit pattern
	VMOV  R4, V29.D2         // product seed: -0 in both lanes

	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	VEOR V4.B16, V4.B16, V4.B16
	VEOR V5.B16, V5.B16, V5.B16
	VEOR V6.B16, V6.B16, V6.B16
	VEOR V7.B16, V7.B16, V7.B16
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16

	CBZ R0, storeMulAdd

loopMulAdd:
	VLD1 (R2), [V16.D2, V17.D2, V18.D2, V19.D2] // B(t, 0:8)
	ADD  R9, R2

	FMOVD (R1), F20        // A(0,t)
	VDUP  V20.D[0], V20.D2
	VMOV  V29.B16, V21.B16
	VFMLA V16.D2, V20.D2, V21.D2
	VFMLA V30.D2, V21.D2, V0.D2
	VMOV  V29.B16, V21.B16
	VFMLA V17.D2, V20.D2, V21.D2
	VFMLA V30.D2, V21.D2, V1.D2
	VMOV  V29.B16, V21.B16
	VFMLA V18.D2, V20.D2, V21.D2
	VFMLA V30.D2, V21.D2, V2.D2
	VMOV  V29.B16, V21.B16
	VFMLA V19.D2, V20.D2, V21.D2
	VFMLA V30.D2, V21.D2, V3.D2

	FMOVD (R1)(R5), F20    // A(1,t)
	VDUP  V20.D[0], V20.D2
	VMOV  V29.B16, V21.B16
	VFMLA V16.D2, V20.D2, V21.D2
	VFMLA V30.D2, V21.D2, V4.D2
	VMOV  V29.B16, V21.B16
	VFMLA V17.D2, V20.D2, V21.D2
	VFMLA V30.D2, V21.D2, V5.D2
	VMOV  V29.B16, V21.B16
	VFMLA V18.D2, V20.D2, V21.D2
	VFMLA V30.D2, V21.D2, V6.D2
	VMOV  V29.B16, V21.B16
	VFMLA V19.D2, V20.D2, V21.D2
	VFMLA V30.D2, V21.D2, V7.D2

	FMOVD (R1)(R6), F20    // A(2,t)
	VDUP  V20.D[0], V20.D2
	VMOV  V29.B16, V21.B16
	VFMLA V16.D2, V20.D2, V21.D2
	VFMLA V30.D2, V21.D2, V8.D2
	VMOV  V29.B16, V21.B16
	VFMLA V17.D2, V20.D2, V21.D2
	VFMLA V30.D2, V21.D2, V9.D2
	VMOV  V29.B16, V21.B16
	VFMLA V18.D2, V20.D2, V21.D2
	VFMLA V30.D2, V21.D2, V10.D2
	VMOV  V29.B16, V21.B16
	VFMLA V19.D2, V20.D2, V21.D2
	VFMLA V30.D2, V21.D2, V11.D2

	FMOVD (R1)(R7), F20    // A(3,t)
	VDUP  V20.D[0], V20.D2
	VMOV  V29.B16, V21.B16
	VFMLA V16.D2, V20.D2, V21.D2
	VFMLA V30.D2, V21.D2, V12.D2
	VMOV  V29.B16, V21.B16
	VFMLA V17.D2, V20.D2, V21.D2
	VFMLA V30.D2, V21.D2, V13.D2
	VMOV  V29.B16, V21.B16
	VFMLA V18.D2, V20.D2, V21.D2
	VFMLA V30.D2, V21.D2, V14.D2
	VMOV  V29.B16, V21.B16
	VFMLA V19.D2, V20.D2, V21.D2
	VFMLA V30.D2, V21.D2, V15.D2

	ADD  R8, R1
	SUBS $1, R0, R0
	BNE  loopMulAdd

storeMulAdd:
	VST1 [V0.D2, V1.D2, V2.D2, V3.D2], (R3)
	ADD  R10, R3
	VST1 [V4.D2, V5.D2, V6.D2, V7.D2], (R3)
	ADD  R10, R3
	VST1 [V8.D2, V9.D2, V10.D2, V11.D2], (R3)
	ADD  R10, R3
	VST1 [V12.D2, V13.D2, V14.D2, V15.D2], (R3)
	RET
