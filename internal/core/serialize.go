package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"lrm/internal/mat"
)

// A decomposition is expensive to compute (it is the whole optimization)
// but depends only on the workload, not the data or ε. Persisting it lets
// a deployment optimize once and answer forever.

// decompositionWire is the gob wire form of a Decomposition.
type decompositionWire struct {
	BRows, BCols int
	LRows, LCols int
	BData, LData []float64
	Residual     float64
	Outer        int
	Converged    bool
}

// Encode serializes the decomposition in a self-contained binary format.
func (d *Decomposition) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(d.wire()); err != nil {
		return fmt.Errorf("core: encoding decomposition: %w", err)
	}
	return nil
}

func (d *Decomposition) wire() decompositionWire {
	return decompositionWire{
		BRows: d.B.Rows(), BCols: d.B.Cols(),
		LRows: d.L.Rows(), LCols: d.L.Cols(),
		BData: d.B.RawData(), LData: d.L.RawData(),
		Residual: d.Residual, Outer: d.OuterIterations, Converged: d.Converged,
	}
}

// ReadDecomposition deserializes a decomposition written by Encode and
// validates its shape invariants.
func ReadDecomposition(r io.Reader) (*Decomposition, error) {
	var wire decompositionWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decoding decomposition: %w", err)
	}
	return wire.decomposition()
}

// decomposition validates the wire form — shared by the dense and
// Kronecker readers, so factor payloads get the same scrutiny.
func (wire *decompositionWire) decomposition() (*Decomposition, error) {
	// The payload is untrusted (a cache directory a misbehaving writer or
	// an attacker may have touched): every invariant the rest of the
	// repository assumes must be re-established here, or a crafted file
	// poisons every subsequent answer.
	if wire.BRows < 0 || wire.BCols < 0 || wire.LRows < 0 || wire.LCols < 0 {
		return nil, fmt.Errorf("core: corrupt decomposition dimensions")
	}
	// Oversized dimensions would overflow rows*cols and slip past the
	// length check below (e.g. 2³²×2³² wraps to 0, matching empty data),
	// then panic deep inside the answer path instead of failing here.
	const maxDim = 1 << 24
	if wire.BRows > maxDim || wire.BCols > maxDim || wire.LRows > maxDim || wire.LCols > maxDim {
		return nil, fmt.Errorf("core: decomposition dimensions exceed %d", maxDim)
	}
	if len(wire.BData) != wire.BRows*wire.BCols || len(wire.LData) != wire.LRows*wire.LCols {
		return nil, fmt.Errorf("core: corrupt decomposition payload")
	}
	if wire.BCols != wire.LRows {
		return nil, fmt.Errorf("core: decomposition shape mismatch %d vs %d", wire.BCols, wire.LRows)
	}
	if wire.Outer < 0 {
		return nil, fmt.Errorf("core: corrupt decomposition iteration count %d", wire.Outer)
	}
	if math.IsNaN(wire.Residual) || math.IsInf(wire.Residual, 0) || wire.Residual < 0 {
		return nil, fmt.Errorf("core: corrupt decomposition residual %v", wire.Residual)
	}
	d := &Decomposition{
		B:               mat.NewFromData(wire.BRows, wire.BCols, wire.BData),
		L:               mat.NewFromData(wire.LRows, wire.LCols, wire.LData),
		Residual:        wire.Residual,
		OuterIterations: wire.Outer,
		Converged:       wire.Converged,
	}
	if !d.B.IsFinite() || !d.L.IsFinite() {
		return nil, fmt.Errorf("core: decomposition contains non-finite values")
	}
	return d, nil
}
