// Command lrmserve serves ε-differentially-private batch query answering
// over HTTP, fronting the repository's concurrent answering engine
// (internal/engine): workload decompositions are prepared once, cached in
// memory (LRU, singleflight) and optionally on disk, then amortized over
// every subsequent request.
//
// Usage:
//
//	lrmserve -addr :8080 -mech lrm -cache-dir /var/cache/lrm
//	lrmserve -mech auto                      # plan per workload: analyze, score the
//	                                         # candidates, serve the winner (decisions
//	                                         # appear under "plans" in GET /stats)
//	lrmserve -mech auto -plan-candidates lrm,lm,nor,wm
//	lrmserve -coalesce-window 2ms            # merge concurrent same-workload requests
//	lrmserve -shard-rows 4096                # row-shard oversized workloads (ε splits by
//	                                         # sequential composition across shards)
//	lrmserve -budget-dir /var/lib/lrm -tenant-eps 'default=10,acme=2.5'
//	                                         # durable per-tenant ε accounting (see below)
//	lrmserve -max-inflight 8 -queue 16 -deadline 5s
//	                                         # bounded admission + per-request deadlines
//
// Per-tenant ε accounting (-tenant-eps): each item is tenant=ε, or a
// bare ε that becomes the default cap for tenants not listed. Requests
// carry a "tenant" field (empty means "default"); a request's total ε —
// eps × histograms — is charged against the tenant's budget at the
// commit point, and an exhausted tenant gets 429. With -budget-dir the
// accounting is durable: every grant is fsynced to a per-tenant
// write-ahead log before it is issued, so a crash can over-count ε but
// never refund it, and a restart resumes from the logged spend.
//
// Admission control (-max-inflight, -queue, -retry-after): at most
// -max-inflight answer requests run concurrently; up to -queue more wait
// behind them; the rest get 429 with a Retry-After hint. Under pressure
// the server degrades in cost order — requests whose workload is not
// already prepared (cold) are shed first, so cheap warm answers keep
// flowing while expensive decompositions wait for calm. -deadline bounds
// each request end to end; the deadline propagates through the
// coalescer into the engine, and a request cancelled before its commit
// point spends none of its tenant's ε.
//
// With -coalesce-window, concurrent POST /answer requests for the same
// workload fingerprint and ε (unseeded and unbudgeted only) are held up
// to the window and answered as one engine batch through the multi-RHS
// path; each caller receives exactly its own rows.
//
// Endpoints:
//
//	POST /answer
//	    Request body (JSON):
//	        {
//	          "workload":   [[...], ...],   // m×n query matrix W, OR
//	          "spec":       "prefix(1024)", // implicit workload spec (see below)
//	          "histograms": [[...], ...],   // one or more length-n databases
//	          "eps":        0.5,            // per-histogram release budget
//	          "budget":     1.0,            // optional total ε cap for the request
//	          "seed":       7               // optional: pins the noise stream (debug/audit
//	                                        // only — omit in production; known seeds are
//	                                        // subtractable)
//	        }
//	    Response body: {"answers": [[...], ...], "fingerprint": "..."}
//	    Exactly one of "workload" and "spec" must be set. A spec names the
//	    queries structurally — prefix(N), ranges(N), identity(N), total(N),
//	    marginals(n1,…,nd;k=K), or kron:<factor>x<factor>x… — and is served
//	    without ever materializing the matrix, so Kronecker specs with
//	    trillions of cells answer in megabytes. Requests whose eps is zero,
//	    negative, or non-finite, or whose spec is unknown or malformed, are
//	    rejected with 400 before any engine work.
//	GET /stats
//	    Engine counter snapshot (cache hits/misses, prepares, planned,
//	    evictions, disk traffic, requests, answers) plus the serving
//	    mechanism, and on -mech auto the per-workload plan decisions.
//	GET /healthz
//	    200 once serving.
//
// The server shuts down gracefully on SIGINT/SIGTERM: listeners stop,
// in-flight requests finish, then the engine's worker pool is released.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lrm/internal/benchsuite"
	"lrm/internal/core"
	"lrm/internal/engine"
	"lrm/internal/mat"
	"lrm/internal/mechanism"
	"lrm/internal/plan"
	"lrm/internal/privacy"
	"lrm/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		mechName   = flag.String("mech", "lrm", "serving mechanism: lrm, lm, nor, wm, hm, mm, fpa, cm, nf, sf — or 'auto' to plan per workload")
		coeffs     = flag.Int("coeffs", 0, "fpa: retained Fourier coefficients / cm: measurements / nf, sf: buckets (0 = mechanism default)")
		candidates = flag.String("plan-candidates", "", "auto: comma-separated candidate mechanisms to score (empty = lrm,lm,nor)")
		cacheDir   = flag.String("cache-dir", "", "directory for persisted decompositions and plans (empty = memory only)")
		cacheSize  = flag.Int("cache-size", 64, "max prepared workloads resident in memory")
		workers    = flag.Int("workers", 0, "max concurrent chunks per batch request on the shared worker pool (0 = GOMAXPROCS)")
		shardRows  = flag.Int("shard-rows", 0, "row-shard workloads with more than this many queries (0 = disabled); shards split eps by sequential composition")
		maxBody    = flag.Int64("max-body", 64<<20, "maximum request body size in bytes")
		coWindow   = flag.Duration("coalesce-window", 0, "hold concurrent same-workload answer requests up to this long and answer them as one engine batch (0 = disabled)")
		coMax      = flag.Int("coalesce-max", 64, "flush a coalescing window early once it holds this many histograms")

		budgetDir   = flag.String("budget-dir", "", "directory for durable per-tenant ε write-ahead logs (empty = in-memory accounting)")
		tenantEps   = flag.String("tenant-eps", "", "per-tenant ε caps: 'tenant=eps,...'; a bare eps is the default cap for unlisted tenants (empty = no tenant accounting)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently running answer requests (0 = unbounded, admission control off)")
		queueLen    = flag.Int("queue", 0, "max answer requests waiting behind -max-inflight before 429 (0 = 2×max-inflight)")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint sent with 429 overload responses")
		deadline    = flag.Duration("deadline", 0, "per-request deadline, propagated through the engine (0 = none)")
		calibrate   = flag.Bool("calibrate", true, "measure GEMM kernel families at startup and dispatch each product shape to the fastest (families are bit-compatible; off = architectural default)")
	)
	flag.Parse()

	// Measured dispatch: time every selectable kernel family on each
	// product shape class and serve with the per-class winner. Tens of
	// milliseconds once, before the listener opens; GET /stats reports
	// the resulting table.
	calibrated := false
	if *calibrate && len(mat.KernelFamilies()) > 1 {
		benchsuite.CalibrateKernels()
		calibrated = true
	}
	log.Printf("lrmserve: kernel tier %s (calibrated=%v), dispatch: %s",
		mat.KernelTier(), calibrated, mat.KernelDispatchString())

	engOpts := engine.Options{
		CacheSize: *cacheSize,
		CacheDir:  *cacheDir,
		Workers:   *workers,
		ShardRows: *shardRows,
	}
	served := *mechName
	if *mechName == "auto" {
		// Plan-aware serving: each workload is analyzed on first sight and
		// served by the candidate the planner scores best; decisions show
		// up under "plans" in GET /stats. Candidate typos must die here,
		// at startup — not as a 400 on every subsequent request.
		cands := splitCandidates(*candidates)
		for _, name := range cands {
			if _, err := mechanism.ByName(name, mechanism.Config{Coeffs: *coeffs}); err != nil {
				log.Fatalf("lrmserve: -plan-candidates: %v", err)
			}
		}
		engOpts.Planner = &plan.Options{
			Config:     mechanism.Config{Coeffs: *coeffs},
			Mechanisms: cands,
			ShardRows:  *shardRows,
		}
	} else {
		mech, err := mechanism.ByName(*mechName, mechanism.Config{Coeffs: *coeffs})
		if err != nil {
			log.Fatalf("lrmserve: %v", err)
		}
		engOpts.Mechanism = mech
		served = mech.Name()
	}
	if *budgetDir != "" && *tenantEps == "" {
		log.Fatal("lrmserve: -budget-dir requires -tenant-eps (no tenant caps configured)")
	}
	if *tenantEps != "" {
		def, totals, err := parseTenantEps(*tenantEps)
		if err != nil {
			log.Fatalf("lrmserve: -tenant-eps: %v", err)
		}
		acct, err := privacy.OpenAccountant(privacy.AccountantOptions{
			Dir:          *budgetDir,
			DefaultTotal: def,
			Totals:       totals,
		})
		if err != nil {
			log.Fatalf("lrmserve: opening accountant: %v", err)
		}
		engOpts.Accountant = acct // the engine owns it now; eng.Close closes it
	}
	eng, err := engine.New(engOpts)
	if err != nil {
		log.Fatalf("lrmserve: %v", err)
	}
	var co *coalescer
	if *coWindow > 0 {
		co = newCoalescer(eng, *coWindow, *coMax)
	}
	var adm *admission
	if *maxInflight > 0 {
		q := *queueLen
		if q <= 0 {
			q = 2 * *maxInflight
		}
		adm = newAdmission(*maxInflight, q, *retryAfter)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(eng, handlerConfig{mech: served, maxBody: *maxBody, co: co, adm: adm, deadline: *deadline, calibrated: calibrated}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("lrmserve: serving %s on %s (cache %d, dir %q)", served, *addr, *cacheSize, *cacheDir)

	select {
	case err := <-errc:
		log.Fatalf("lrmserve: %v", err)
	case <-ctx.Done():
	}
	log.Print("lrmserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("lrmserve: shutdown: %v", err)
	}
	// Closing the engine flushes and closes the accountant's write-ahead
	// logs; a failure here means the last durable state is whatever the
	// per-grant fsyncs already persisted — report it, don't hide it.
	if err := eng.Close(); err != nil {
		log.Printf("lrmserve: close: %v", err)
	}
}

// parseTenantEps parses the -tenant-eps list: comma-separated items,
// each either tenant=eps or a bare eps that becomes the default cap for
// unlisted tenants.
func parseTenantEps(s string) (def privacy.Epsilon, totals map[string]privacy.Epsilon, err error) {
	totals = make(map[string]privacy.Epsilon)
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, val, found := strings.Cut(item, "=")
		if !found {
			val, name = name, ""
		} else if strings.TrimSpace(name) == "" {
			return 0, nil, fmt.Errorf("empty tenant name in %q", item)
		}
		eps, perr := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if perr != nil || privacy.Epsilon(eps).Validate() != nil {
			return 0, nil, fmt.Errorf("bad epsilon in %q", item)
		}
		if name = strings.TrimSpace(name); name == "" {
			if def != 0 {
				return 0, nil, fmt.Errorf("duplicate default epsilon %q", item)
			}
			def = privacy.Epsilon(eps)
		} else {
			if _, dup := totals[name]; dup {
				return 0, nil, fmt.Errorf("duplicate tenant %q", name)
			}
			totals[name] = privacy.Epsilon(eps)
		}
	}
	return def, totals, nil
}

// answerRequest is the POST /answer JSON body. Exactly one of Workload
// and Spec describes the queries: Workload carries the m×n matrix
// explicitly, Spec names it structurally in the compact grammar
// ("prefix(1024)", "kron:prefix(1024)xprefix(1024)", …) and is never
// materialized — the implicit path for workloads too large to ship or
// to build.
type answerRequest struct {
	Workload [][]float64 `json:"workload"`
	Spec     string      `json:"spec"`
	//lrm:source — client-supplied unit counts, raw until noised
	Histograms [][]float64 `json:"histograms"`
	Eps        float64     `json:"eps"`
	Budget     float64     `json:"budget"`
	Seed       int64       `json:"seed"`
	// Tenant names the durable ε budget this request draws from, on a
	// server running with -tenant-eps. Empty means "default".
	Tenant string `json:"tenant"`
}

// answerResponse is the POST /answer JSON response.
type answerResponse struct {
	Answers     [][]float64 `json:"answers"`
	Fingerprint string      `json:"fingerprint"`
}

// statsResponse is the GET /stats JSON response. Plans is populated on
// an auto (plan-aware) server: one decision per planned workload still
// resident in the cache. Tenants is populated when tenant accounting is
// on: per-tenant total, spent, and remaining ε. Admission is populated
// when -max-inflight bounds concurrency. Kernels reports which GEMM
// micro-kernel families this process answers with.
type statsResponse struct {
	Mechanism string                 `json:"mechanism"`
	Engine    engine.Stats           `json:"engine"`
	Plans     []engine.PlanDecision  `json:"plans,omitempty"`
	Tenants   []privacy.TenantStatus `json:"tenants,omitempty"`
	Admission *admissionStats        `json:"admission,omitempty"`
	Kernels   kernelStats            `json:"kernels"`
}

// kernelStats is the /stats kernels section: the widest kernel tier the
// host supports, the shape-class → family dispatch table in effect, and
// whether that table came from startup micro-calibration (-calibrate)
// or is the architectural default. The selectable families are
// bit-compatible by construction, so the table describes speed only —
// never output bits.
type kernelStats struct {
	Tier       string            `json:"tier"`
	Calibrated bool              `json:"calibrated"`
	Dispatch   map[string]string `json:"dispatch"`
}

// splitCandidates parses the -plan-candidates list; empty means the
// planner's default set.
func splitCandidates(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// handlerConfig bundles the knobs newHandler needs beyond the engine.
type handlerConfig struct {
	mech       string
	maxBody    int64
	co         *coalescer    // nil = coalescing disabled
	adm        *admission    // nil = unbounded admission
	deadline   time.Duration // 0 = no per-request deadline
	calibrated bool          // startup kernel calibration ran
}

// newHandler builds the HTTP mux over an engine. Split from main so tests
// can drive it with httptest.
func newHandler(eng *engine.Engine, cfg handlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/answer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		var req answerRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, cfg.maxBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		// Reject a hopeless privacy budget before any engine work: a
		// zero, negative, or non-finite ε can never release anything, so
		// it must not cost a workload hash, a cache slot, or a coalescing
		// window. (NaN/Inf cannot survive JSON decoding, but the range
		// check still owns them for completeness.)
		if err := privacy.Epsilon(req.Eps).Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// Resolve the queries: an implicit spec string or an explicit
		// matrix, never both. An unknown or malformed spec is the
		// caller's fault and dies here, before any engine work.
		var (
			wl *workload.Workload
			sp workload.Spec
			fp string
		)
		if req.Spec != "" {
			if len(req.Workload) != 0 {
				httpError(w, http.StatusBadRequest, "request sets both workload and spec")
				return
			}
			var err error
			if sp, err = workload.ParseSpec(req.Spec); err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
			fp = workload.SpecFingerprint(sp)
		} else {
			var err error
			if wl, err = workloadFromJSON(req.Workload); err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
			// Hash once, up front: the engine reuses it for cache keying (a
			// fresh per-request matrix would defeat its pointer memo), the
			// coalescer groups concurrent requests by it, admission control
			// reads warmth from it, and the response echoes it so clients can
			// correlate with /stats.
			fp = core.Fingerprint(wl.W)
		}
		tenant := req.Tenant
		if tenant == "" && eng.Accountant() != nil {
			tenant = "default"
		}

		// The request's context carries the client disconnect and the
		// configured deadline through the coalescer and the engine: a
		// request cancelled before its commit point spends no ε.
		ctx := r.Context()
		if cfg.deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, cfg.deadline)
			defer cancel()
		}

		if cfg.adm != nil {
			// Bounded admission: warm requests may queue, cold ones need
			// a free slot now (shedding the expensive Prepare is the
			// first stage of degradation). The slot is held for the
			// request's whole engine phase.
			if err := cfg.adm.acquire(ctx, !eng.Warm(fp)); err != nil {
				httpRequestError(w, cfg, err)
				return
			}
			defer cfg.adm.release()
		}

		var (
			answers [][]float64
			err     error
		)
		if cfg.co != nil && sp == nil && req.Seed == 0 && req.Budget == 0 {
			// Mergeable request: validate shapes first — inside a merged
			// batch a malformed histogram would fail the whole group, not
			// just its sender — then join the coalescing window.
			if err := validateHistograms(req.Histograms, wl.Domain()); err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
			answers, err = cfg.co.submit(ctx, wl, fp, req.Histograms, req.Eps, tenant)
		} else {
			answers, err = eng.Answer(engine.Request{
				Context:     ctx,
				Workload:    wl,
				Spec:        sp,
				Histograms:  req.Histograms,
				Eps:         privacy.Epsilon(req.Eps),
				Budget:      privacy.Epsilon(req.Budget),
				Seed:        req.Seed,
				Tenant:      tenant,
				Fingerprint: fp,
			})
		}
		if err != nil {
			httpRequestError(w, cfg, err)
			return
		}
		writeJSON(w, answerResponse{Answers: answers, Fingerprint: fp})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET required")
			return
		}
		resp := statsResponse{
			Mechanism: cfg.mech,
			Engine:    eng.Stats(),
			Plans:     eng.Decisions(),
			Kernels: kernelStats{
				Tier:       mat.KernelTier(),
				Calibrated: cfg.calibrated,
				Dispatch:   mat.KernelDispatch(),
			},
		}
		if acct := eng.Accountant(); acct != nil {
			resp.Tenants = acct.Tenants()
		}
		if cfg.adm != nil {
			resp.Admission = cfg.adm.stats()
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// httpRequestError maps an answer-path failure to its HTTP shape.
// Overload and budget exhaustion are 429 (the former with a Retry-After
// hint — the caller should come back, just not yet); a blown deadline is
// 503 (the server was too loaded to answer in time); everything else is
// the caller's fault.
func httpRequestError(w http.ResponseWriter, cfg handlerConfig, err error) {
	switch {
	case errors.Is(err, errOverloaded) || errors.Is(err, errShedCold):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(cfg.adm)))
		httpError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, privacy.ErrBudgetExhausted):
		httpError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, privacy.ErrUnknownTenant):
		httpError(w, http.StatusForbidden, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusServiceUnavailable, "deadline exceeded")
	case errors.Is(err, context.Canceled):
		// The client is gone; the status is for the log, not for them.
		httpError(w, http.StatusServiceUnavailable, "request cancelled")
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
	}
}

// retryAfterSeconds rounds the admission gate's hint up to whole
// seconds, the Retry-After header's unit (minimum 1).
func retryAfterSeconds(adm *admission) int {
	if adm == nil {
		return 1
	}
	s := int((adm.retryAfter + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// validateHistograms rejects empty batches and wrong-length histograms
// before a request joins a coalescing group.
func validateHistograms(hists [][]float64, domain int) error {
	if len(hists) == 0 {
		return errors.New("no histograms")
	}
	for i, h := range hists {
		if len(h) != domain {
			return fmt.Errorf("histogram %d has %d entries, domain is %d", i, len(h), domain)
		}
	}
	return nil
}

// workloadFromJSON validates and converts the wire matrix. The engine
// caches by content fingerprint, so a fresh matrix per request still
// shares the cached preparation with every identical predecessor.
func workloadFromJSON(rows [][]float64) (*workload.Workload, error) {
	if len(rows) == 0 {
		return nil, errors.New("workload matrix is empty")
	}
	n := len(rows[0])
	if n == 0 {
		return nil, errors.New("workload matrix has empty rows")
	}
	for i, row := range rows {
		if len(row) != n {
			return nil, fmt.Errorf("workload row %d has %d entries, row 0 has %d", i, len(row), n)
		}
	}
	w := &workload.Workload{W: mat.FromRows(rows), Name: "http"}
	if !w.W.IsFinite() {
		return nil, errors.New("workload matrix contains non-finite values")
	}
	return w, nil
}

// writeJSON encodes into a buffer before touching the ResponseWriter, so
// an encode failure (e.g. ±Inf answers, which encoding/json rejects) can
// still become a 500 instead of a 200 with an empty body.
//
//lrm:sink — v is serialized onto the wire
func writeJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	body = append(body, '\n')
	if _, err := w.Write(body); err != nil {
		log.Printf("lrmserve: writing response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	msg := fmt.Sprintf(format, args...)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": msg}); err != nil {
		log.Printf("lrmserve: writing error response: %v", err)
	}
}
