package core

import (
	"strings"
	"testing"

	"lrm/internal/mat"
)

func TestFingerprint(t *testing.T) {
	a := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	b := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("equal matrices fingerprint differently")
	}
	c := mat.FromRows([][]float64{{1, 2}, {3, 5}})
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("different data fingerprints equal")
	}
	// Same data, different shape: a 1×4 and a 4×1 must not collide.
	row := mat.NewFromData(1, 4, []float64{1, 2, 3, 4})
	col := mat.NewFromData(4, 1, []float64{1, 2, 3, 4})
	if Fingerprint(row) == Fingerprint(col) {
		t.Fatal("shape not part of the fingerprint")
	}
	fp := Fingerprint(a)
	if len(fp) != 64 || strings.ToLower(fp) != fp {
		t.Fatalf("fingerprint %q is not lowercase hex of a SHA-256", fp)
	}
	// Larger than the internal chunk buffer: exercise the chunk loop.
	big := mat.New(40, 40)
	big.Set(17, 23, 1)
	big2 := mat.New(40, 40)
	big2.Set(17, 23, 1)
	if Fingerprint(big) != Fingerprint(big2) {
		t.Fatal("chunked fingerprint not deterministic")
	}
	big2.Set(39, 39, 1e-300)
	if Fingerprint(big) == Fingerprint(big2) {
		t.Fatal("trailing-chunk change not detected")
	}
}
