// Package lint is the repository's own static-analysis suite: eight
// analyzers that turn the invariants the numeric and privacy layers
// depend on — but that ordinary tests only probe pointwise — into
// build-time checks over every path.
//
// # Syntactic analyzers
//
//   - aliasguard: in-place mat/sparse kernel calls (MulTo, GramTo,
//     MulColsTo, SolveRightSPDTo, …) must not pass the same variable or
//     field chain as destination and a forbidden operand. The kernels
//     panic on aliasing at runtime; the analyzer catches the obvious
//     cases on paths no test drives.
//   - noalloc: functions annotated //lrm:noalloc must contain no
//     syntactic allocation constructs (make, new, append, map/slice
//     literals, &-composite literals, closures, go statements). The
//     annotation is the static face of the testing.AllocsPerRun pins.
//   - noiserand: math/rand is importable only by internal/rng, and
//     constant noise seeds (rng.New(42), Source.Reseed(7), Seed: 9
//     fields) are forbidden in serving code — a replayable noise stream
//     is a subtractable one, which voids the ε-DP guarantee.
//   - epshygiene: an ε reaching a release sink (Answer, AnswerMany,
//     Prepare, PrepareWith) must be validated earlier in the same
//     function, and (*privacy.Budget).Spend errors must not be
//     discarded.
//   - detiter: in the bit-identity packages (mat, core, engine, plan),
//     map-range bodies must not write positional output or accumulate
//     floating-point state, because map iteration order is randomized
//     per execution.
//
// # Dataflow analyzers
//
// Three analyzers work on a whole program rather than one function at a
// time. Run builds a Program — every loaded package, a FuncInfo per
// function declaration, and a symbolic call graph keyed by
// "pkgpath.Recv.Name" strings so source-checked and imported views of
// the same function unify — and the analyzers compose per-function
// summaries over it to a fixpoint.
//
// noiseflow proves the noise-before-release invariant of the low-rank
// mechanism: no raw histogram data reaches a release boundary without
// passing through a noise-adding sanitizer, on any interprocedural
// path. Taint is a small abstract value per variable (nfDeps): a
// "fresh" bit with a human-readable witness chain for data already
// known raw, plus a bitmask of the enclosing function's parameters the
// value depends on. Summaries record, per function, the taint of each
// result and the taint each pointer-like parameter's storage gains
// (mutates); a Kleene iteration from bottom composes them across calls,
// joining over every implementation at interface call sites. A second
// fixpoint propagates raw-on-entry facts from //lrm:source field reads
// down the call graph, and a final pass reports every sink reached by a
// raw value, with the full source → call → sink witness chain in the
// message.
//
// The taint model, in brief:
//
//	source:    reads of //lrm:source fields (fresh, with witness)
//	transfer:  assignments, arithmetic, composite literals, indexing,
//	           append/copy, call results and pointer-arg mutations via
//	           callee summaries; slice views (cd := dst.data) forward
//	           writes to their base variable
//	exempt:    error values; integer/bool scalars (dims, counts, seeds
//	           — shape metadata, like the built-in len); non-source
//	           fields of a //lrm:source-bearing struct
//	sanitize:  calls to //lrm:sanitizer functions clear the returned
//	           (or named in-place) values; a declared sanitizer whose
//	           body never draws from internal/rng is itself a finding
//	sink:      //lrm:sink functions (arguments or returns) and
//	           net/http.ResponseWriter writes
//
// lockguard enforces lock discipline declaratively: a struct field
// annotated //lrm:guardedby mu may only be read or written while the
// sibling mutex mu is held. The analyzer tracks Lock/Unlock/RLock pairs
// (including defer), understands early-return branches that unlock and
// terminate, exempts freshly constructed values no other goroutine can
// see, and supports the function form — //lrm:guardedby mu on a method
// declares "callers must hold recv.mu", checked at every call site.
//
// asmvet cross-checks every .s file against the Go prototypes it
// implements: TEXT blocks and bodyless declarations must pair up both
// ways, frame descriptors ($frame-argsize) must match the ABI0 argument
// block computed from the prototype via types.SizesFor, every
// sym+off(FP) reference must use the ABI0 offset of that parameter or
// named result, NOSPLIT is required, and a function that touches Y
// registers must execute VZEROUPPER immediately before RET.
//
// # Directive grammar
//
// Annotations ride in comments attached to the declaration they
// describe (doc comments for functions and fields); prose may follow an
// em dash.
//
//	//lrm:source               field holds raw, un-noised data
//	//lrm:sanitizer            the function's results are sanitized
//	//lrm:sanitizer v1 v2 …    these arguments are sanitized in place
//	//lrm:sink                 raw data must not reach the arguments
//	//lrm:sink return          raw data must not be returned
//	//lrm:guardedby mu         field: hold sibling mu to touch this
//	                           method: callers hold recv.mu on entry
//	//lrm:noalloc              body must not allocate
//
// Malformed directives — a sanitizer naming a non-parameter, an
// unknown sink form, //lrm:guardedby on a free function — are findings
// in their own right.
//
// Findings are suppressed case by case with
//
//	//lint:ignore <analyzer> <justification>
//
// on or directly above the flagged line (in .go and .s files alike);
// the justification is mandatory, a directive naming an unknown
// analyzer is itself a finding, and generated files (a "Code generated"
// header) are exempt wholesale.
//
// # Framework
//
// The framework (Analyzer, Pass, Diagnostic, Run) is a deliberate
// stdlib-only subset of golang.org/x/tools/go/analysis: packages are
// loaded through `go list -export` plus the gc importer, so the suite
// needs no dependencies beyond the toolchain and can migrate onto the
// real multichecker wholesale if the dependency ever lands. One load
// and typecheck is shared by all eight analyzers — on this tree that is
// ~0.55 s for the whole suite versus ~3.3 s if each analyzer loaded the
// program itself (about 6x). The cmd/lrmlint binary drives the suite
// (text or -json output; exit 0 clean, 1 findings, 2 load errors);
// fixture packages under testdata/src exercise every analyzer with
// want-annotated positives and clean negatives, and injected-violation
// tests delete a noise-add or a lock acquisition from the real tree's
// AST and assert the suite catches it.
package lint
