// Package clean holds noalloc fixtures that must produce no
// diagnostics: an annotated arithmetic-only body, an unannotated
// function that allocates freely, and a justified suppression.
package clean

// dot is the shape of a real hot loop: arithmetic over caller buffers.
//
//lrm:noalloc
func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// grow is not annotated, so its allocations are none of the analyzer's
// business.
func grow(xs []float64) []float64 {
	return append(xs, make([]float64, 4)...)
}

// pinned allocates once under a justified //lint:ignore, the documented
// escape hatch.
//
//lrm:noalloc
func pinned(n int) []float64 {
	//lint:ignore noalloc fixture: demonstrates a justified suppression
	return make([]float64, n)
}
