// Package bad holds detiter want-diagnostic fixtures: map-range bodies
// that write positional output or accumulate floats, so the result
// depends on Go's randomized iteration order.
package bad

func flatten(m map[string]float64, out []float64) {
	i := 0
	for _, v := range m {
		out[i] = v // want `write to out inside map range`
		i++
	}
}

func total(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `floating-point op-assignment inside map range`
	}
	return s
}

func values(m map[string]float64) []float64 {
	var vs []float64
	for _, v := range m {
		vs = append(vs, v) // want `append of map values inside map range`
	}
	return vs
}
