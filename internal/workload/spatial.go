package workload

import (
	"fmt"

	"lrm/internal/mat"
	"lrm/internal/rng"
)

// Range2D generates m random axis-aligned rectangle-count queries over a
// d1×d2 grid flattened row-major into n = d1·d2 cells: each query picks
// an interval on each axis uniformly (the 2-D analogue of the paper's
// WRange). Rectangle batches over grids are strongly column-correlated,
// which is the regime the paper's introduction motivates.
func Range2D(m, d1, d2 int, src *rng.Source) *Workload {
	if m < 1 || d1 < 1 || d2 < 1 {
		panic(fmt.Sprintf("workload: Range2D needs m,d1,d2 >= 1, got %d,%d,%d", m, d1, d2))
	}
	w := mat.New(m, d1*d2)
	for i := 0; i < m; i++ {
		r1, r2 := randInterval(d1, src)
		c1, c2 := randInterval(d2, src)
		row := w.RawRow(i)
		for r := r1; r <= r2; r++ {
			for c := c1; c <= c2; c++ {
				row[r*d2+c] = 1
			}
		}
	}
	return &Workload{W: w, Name: "WRange2D"}
}

func randInterval(d int, src *rng.Source) (lo, hi int) {
	lo, hi = src.Intn(d), src.Intn(d)
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi
}

// Kron combines two per-dimension workloads into the product workload
// W₁ ⊗ W₂ over the flattened d1·d2 grid: query (i,j) of the result asks
// query i of w1 on the rows crossed with query j of w2 on the columns.
// All-ranges-per-dimension Kronecker batches are the classic
// multi-dimensional benchmark in the matrix-mechanism literature.
func Kron(name string, w1, w2 *Workload) *Workload {
	return &Workload{W: mat.Kron(w1.W, w2.W), Name: name}
}

// PermutationWorkload returns a random permutation matrix as a workload:
// every unit count is asked exactly once in scrambled order. Its rank is
// n and its sensitivity 1, making it a useful full-rank control in the
// experiments (LRM can do no better than noise-on-data here).
func PermutationWorkload(n int, src *rng.Source) *Workload {
	checkDims(1, n)
	w := mat.New(n, n)
	for i, j := range src.Perm(n) {
		w.Set(i, j, 1)
	}
	return &Workload{W: w, Name: "Permutation"}
}
