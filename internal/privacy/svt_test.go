package privacy

import (
	"errors"
	"testing"

	"lrm/internal/rng"
)

func TestSparseVectorBasicFlow(t *testing.T) {
	src := rng.New(1)
	// Huge ε makes the noise negligible, so the comparisons are crisp.
	sv, err := NewSparseVector(50, 1, 1e6, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sv.Above(10); got {
		t.Fatal("10 reported above 50")
	}
	if got, _ := sv.Above(90); !got {
		t.Fatal("90 reported below 50")
	}
	if sv.Remaining() != 1 {
		t.Fatalf("remaining = %d", sv.Remaining())
	}
	if got, _ := sv.Above(70); !got {
		t.Fatal("70 reported below 50")
	}
	if _, err := sv.Above(100); !errors.Is(err, ErrSVTExhausted) {
		t.Fatalf("exhausted error = %v", err)
	}
}

func TestSparseVectorNegativesAreFree(t *testing.T) {
	src := rng.New(2)
	sv, err := NewSparseVector(1000, 1, 1e6, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		above, err := sv.Above(float64(i))
		if err != nil {
			t.Fatal(err)
		}
		if above {
			t.Fatalf("query %d above threshold 1000", i)
		}
	}
	if sv.Remaining() != 1 {
		t.Fatal("negative answers consumed budget")
	}
}

func TestSparseVectorAccuracy(t *testing.T) {
	// At moderate ε, answers far from the threshold must be classified
	// correctly with high probability.
	correct := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		src := rng.New(int64(100 + i))
		sv, err := NewSparseVector(0, 1, 5, 1, src)
		if err != nil {
			t.Fatal(err)
		}
		// Query at +20: noise scales are 2/5·... far below 20.
		above, err := sv.Above(20)
		if err != nil {
			t.Fatal(err)
		}
		if above {
			correct++
		}
	}
	if float64(correct)/trials < 0.95 {
		t.Fatalf("only %d/%d far-above queries classified correctly", correct, trials)
	}
}

func TestSparseVectorValidation(t *testing.T) {
	src := rng.New(3)
	if _, err := NewSparseVector(0, 0, 1, 1, src); err == nil {
		t.Fatal("zero sensitivity accepted")
	}
	if _, err := NewSparseVector(0, 1, 0, 1, src); err == nil {
		t.Fatal("zero epsilon accepted")
	}
	if _, err := NewSparseVector(0, 1, 1, 0, src); err == nil {
		t.Fatal("c=0 accepted")
	}
}
