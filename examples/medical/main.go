// Medical: the paper's Section 1 running example. A health agency
// publishes statistics over per-state HIV+ patient counts. The query
// batch is correlated — q1 = 2x_NJ + x_CA + x_WA, q2 = x_NJ + 2x_WA,
// q3 = x_NY + 2x_CA + 2x_WA — and the example walks through exactly the
// paper's comparison: noise-on-queries (NOR) has sensitivity 5,
// noise-on-data (LM) reaches SSE 40/ε², the paper's hand-built strategy
// reaches 39/ε², and the optimized low-rank decomposition does better
// still.
package main

import (
	"fmt"

	"lrm"
)

func main() {
	states := []string{"NY", "NJ", "CA", "WA"}
	// Unit counts from the paper's Figure 1(b).
	x := []float64{82700, 19000, 67000, 5900}

	w := lrm.WorkloadFromMatrix("medical", lrm.MatrixFromRows([][]float64{
		{0, 2, 1, 1}, // q1 = 2·NJ + CA + WA
		{0, 1, 0, 2}, // q2 = NJ + 2·WA
		{1, 0, 2, 2}, // q3 = NY + 2·CA + 2·WA
	}))
	fmt.Printf("states: %v\n", states)
	fmt.Printf("workload sensitivity (NOR would use this): %.0f\n", w.Sensitivity())

	eps := lrm.Epsilon(1.0)

	// Analytic expected errors, mirroring the paper's Section 1 numbers.
	nor, _ := lrm.LaplaceResults{}.Prepare(w)
	lm, _ := lrm.LaplaceData{}.Prepare(w)
	fmt.Printf("NOR expected SSE: %.0f/ε²  (2·m·Δ² = 2·3·25)\n", nor.ExpectedSSE(eps))
	fmt.Printf("LM  expected SSE: %.0f/ε²  (2·ΣWᵢⱼ², the paper's 40)\n", lm.ExpectedSSE(eps))

	d, err := lrm.Decompose(w.W, lrm.DecomposeOptions{Rank: 3, Gamma: 1e-6})
	if err != nil {
		panic(err)
	}
	fmt.Printf("LRM expected SSE: %.1f/ε² (paper's hand-built strategy: 39)\n", d.ExpectedSSE(1))
	fmt.Printf("decomposition: residual %.2e, Δ(L) = %.3f, scale Φ = %.2f\n",
		d.Residual, d.Sensitivity(), d.Scale())

	// One private release.
	noisy, err := lrm.AnswerBatch(w, x, eps, lrm.NewSource(7))
	if err != nil {
		panic(err)
	}
	exact := w.Answer(x)
	fmt.Println("\nquery  exact      private release")
	for i := range noisy {
		fmt.Printf("q%d     %9.0f  %12.1f\n", i+1, exact[i], noisy[i])
	}
}
