package lrm

// One benchmark per table/figure of the paper (BenchmarkFigureN runs the
// whole sweep at bench scale and reports rows/series on -v), plus the
// ablation benches DESIGN.md calls out and micro-benchmarks of the
// numerical substrate. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// For paper-scale grids use cmd/lrmbench -scale paper.

import (
	"testing"

	"lrm/internal/benchsuite"
	"lrm/internal/compress"
	"lrm/internal/core"
	"lrm/internal/experiments"
	"lrm/internal/hist"
	"lrm/internal/mat"
	"lrm/internal/mechanism"
	"lrm/internal/optimize"
	"lrm/internal/rng"
	"lrm/internal/sparse"
	"lrm/internal/transform"
	"lrm/internal/workload"
)

func benchConfig() experiments.Config {
	return experiments.Config{Scale: experiments.ScaleBench, Trials: 2, Seed: 1, Dataset: "socialnetwork"}
}

func benchFigure(b *testing.B, fig int) {
	b.Helper()
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Run(fig, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFigure2 regenerates the γ sweep (error & time vs relaxation).
func BenchmarkFigure2(b *testing.B) { benchFigure(b, 2) }

// BenchmarkFigure3 regenerates the r sweep (error & time vs rank ratio).
func BenchmarkFigure3(b *testing.B) { benchFigure(b, 3) }

// BenchmarkFigure4 regenerates error vs domain size on WDiscrete
// (MM/LM/WM/HM/LRM).
func BenchmarkFigure4(b *testing.B) { benchFigure(b, 4) }

// BenchmarkFigure5 regenerates error vs domain size on WRange.
func BenchmarkFigure5(b *testing.B) { benchFigure(b, 5) }

// BenchmarkFigure6 regenerates error vs domain size on WRelated.
func BenchmarkFigure6(b *testing.B) { benchFigure(b, 6) }

// BenchmarkFigure7 regenerates error vs query count on WRange.
func BenchmarkFigure7(b *testing.B) { benchFigure(b, 7) }

// BenchmarkFigure8 regenerates error vs query count on WRelated.
func BenchmarkFigure8(b *testing.B) { benchFigure(b, 8) }

// BenchmarkFigure9 regenerates error vs workload rank parameter s.
func BenchmarkFigure9(b *testing.B) { benchFigure(b, 9) }

// --- Ablation benches (design choices called out in DESIGN.md) ---

func ablationWorkload() *workload.Workload {
	return benchsuite.DecomposeWorkload()
}

func benchDecompose(b *testing.B, opts core.Options) {
	b.Helper()
	b.ReportAllocs()
	w := ablationWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := core.Decompose(w.W, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.ExpectedSSE(1), "sse/eps1")
	}
}

// BenchmarkAblationInnerSolverNesterov measures the paper's Algorithm 2
// inner solver.
func BenchmarkAblationInnerSolverNesterov(b *testing.B) {
	benchDecompose(b, core.Options{Solver: core.SolverNesterov})
}

// BenchmarkAblationInnerSolverPG swaps in plain projected gradient.
func BenchmarkAblationInnerSolverPG(b *testing.B) {
	benchDecompose(b, core.Options{Solver: core.SolverProjectedGradient})
}

// BenchmarkAblationPenaltyAdaptive uses the residual-driven β schedule.
func BenchmarkAblationPenaltyAdaptive(b *testing.B) {
	benchDecompose(b, core.Options{})
}

// BenchmarkAblationPenaltyFixed10 uses the paper's double-every-10
// schedule (Algorithm 1 verbatim).
func BenchmarkAblationPenaltyFixed10(b *testing.B) {
	benchDecompose(b, core.Options{BetaDoubleEvery: 10})
}

// BenchmarkAblationPenaltyFrozen never grows β (the fixed-penalty
// ablation; expect worse feasibility).
func BenchmarkAblationPenaltyFrozen(b *testing.B) {
	benchDecompose(b, core.Options{BetaDoubleEvery: -1})
}

// BenchmarkAblationRestarts1 measures the single-start ALM.
func BenchmarkAblationRestarts1(b *testing.B) {
	benchDecompose(b, core.Options{Restarts: 1})
}

// BenchmarkAblationRestarts4 measures the 4-start ALM (nonconvexity
// hedge; expect ~4× the time and an equal or lower objective).
func BenchmarkAblationRestarts4(b *testing.B) {
	benchDecompose(b, core.Options{Restarts: 4})
}

// BenchmarkAblationL1ProjectionSort measures the Duchi sort-based
// projection.
func BenchmarkAblationL1ProjectionSort(b *testing.B) {
	benchL1(b, optimize.ProjectL1Ball)
}

// BenchmarkAblationL1ProjectionPivot measures the expected-O(n) pivot
// variant used by the inner solver.
func BenchmarkAblationL1ProjectionPivot(b *testing.B) {
	benchL1(b, optimize.ProjectL1BallPivot)
}

func benchL1(b *testing.B, proj func([]float64, float64)) {
	b.Helper()
	src := rng.New(9)
	x := src.NormalVec(4096, 1)
	buf := make([]float64, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		proj(buf, 1)
	}
}

// --- Mechanism answering cost (post-preparation) ---

func benchAnswer(b *testing.B, mech mechanism.Mechanism) {
	b.Helper()
	w := workload.Range(64, 1024, rng.New(21))
	p, err := mech.Prepare(w)
	if err != nil {
		b.Fatal(err)
	}
	x := rng.New(22).UniformVec(1024, 0, 100)
	src := rng.New(23)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Answer(x, 0.1, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnswerLaplaceData(b *testing.B)  { benchAnswer(b, mechanism.LaplaceData{}) }
func BenchmarkAnswerWavelet(b *testing.B)      { benchAnswer(b, mechanism.Wavelet{}) }
func BenchmarkAnswerHierarchical(b *testing.B) { benchAnswer(b, mechanism.Hierarchical{}) }

// BenchmarkAnswerLRM pre-refactor baseline (2026-07-26, Xeon 2.70GHz):
// 127236 ns/op, 9984 B/op, 4 allocs/op.
func BenchmarkAnswerLRM(b *testing.B) { benchAnswer(b, mechanism.LRM{}) }

// BenchmarkEngineAnswer measures the engine's cache-hit serving path on
// the BenchmarkAnswerLRM workload. After the first request the engine
// must do no decomposition work: the only costs over the bare Prepared
// are the cache lookup and the answer-batch bookkeeping (the acceptance
// bar is allocs/op within 2× of BenchmarkAnswerLRM). Baseline
// (2026-07-26, Xeon 2.70GHz): engine 68071 ns/op, 536 B/op, 2 allocs/op
// vs bare Prepared 56918 ns/op, 516 B/op, 1 allocs/op.
func BenchmarkEngineAnswer(b *testing.B) {
	e, req, err := benchsuite.EngineAnswerSetup()
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Answer(req); err != nil { // warm the cache: one Prepare
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Answer(req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := e.Stats(); st.Prepares != 1 {
		b.Fatalf("cache-hit path ran %d prepares, want 1", st.Prepares)
	}
}

// BenchmarkEngineAnswerMany measures the multi-RHS serving path: one
// unseeded request carrying 64 histograms over the BenchmarkAnswerLRM
// workload, answered as packed multi-RHS GEMMs (the acceptance bar is
// ≥2× the throughput of BenchmarkEngineAnswerSeq64, which pushes the
// same 64 histograms through 64 sequential single-histogram requests).
func BenchmarkEngineAnswerMany(b *testing.B) {
	e, req, err := benchsuite.EngineAnswerManySetup()
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Answer(req); err != nil { // warm the cache: one Prepare
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Answer(req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := e.Stats()
	if st.Prepares != 1 {
		b.Fatalf("cache-hit path ran %d prepares, want 1", st.Prepares)
	}
	if st.Batched != st.Requests {
		b.Fatalf("%d of %d requests took the batched path, want all", st.Batched, st.Requests)
	}
}

// BenchmarkEngineAnswerSeq64 is BenchmarkEngineAnswerMany's sequential
// baseline: the identical 64 histograms answered one engine request at a
// time. Per-op time is for all 64, so the two benchmarks compare
// directly.
func BenchmarkEngineAnswerSeq64(b *testing.B) {
	e, req, err := benchsuite.EngineAnswerManySetup()
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Answer(req); err != nil { // warm the cache: one Prepare
		b.Fatal(err)
	}
	one := req
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range req.Histograms {
			one.Histograms = [][]float64{x}
			if _, err := e.Answer(one); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if st := e.Stats(); st.Prepares != 1 {
		b.Fatalf("cache-hit path ran %d prepares, want 1", st.Prepares)
	}
}

// --- Numerical substrate micro-benchmarks ---

// BenchmarkMatMul256 measures the workspace product kernel the hot loops
// use: MulTo into a reused destination. Baselines on this repo's Xeon
// 2.70GHz container: allocating mat.Mul 6.42 ms (pre-PR-1), row-streaming
// MulTo 5.33 ms (pre-PR-3), cache-blocked packed GEMM 1.04 ms.
func BenchmarkMatMul256(b *testing.B) { benchMatMulN(b, 256) }

// benchMatMulN measures the square MulTo product at size n into a reused
// destination, the shape the GEMM dispatcher is tuned for. Operands come
// from internal/benchsuite so cmd/lrmbench's -json trajectory measures
// the identical product.
func benchMatMulN(b *testing.B, n int) {
	b.Helper()
	x, y, dst := benchsuite.MatMulOperands(n)
	b.ReportAllocs()
	b.SetBytes(int64(8 * n * n * 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MulTo(dst, x, y)
	}
}

// BenchmarkMatMul512 is the tentpole kernel size for the cache-blocked
// packed GEMM: big enough that B (2 MB) no longer fits L2, so the
// row-streaming kernel pays the full re-fetch cost per output row.
func BenchmarkMatMul512(b *testing.B) { benchMatMulN(b, 512) }

// BenchmarkMatMul1024 stresses the panel packing at L3 scale.
func BenchmarkMatMul1024(b *testing.B) { benchMatMulN(b, 1024) }

// BenchmarkDecomposeBench is the end-to-end ALM wall-time trajectory
// benchmark: the default Decompose on the ablation workload, the number
// every perf PR must not regress (see cmd/lrmbench -json).
func BenchmarkDecomposeBench(b *testing.B) {
	benchDecompose(b, core.Options{})
}

// BenchmarkPlan measures the adaptive planner end to end on the
// benchsuite planning workloads: one op plans the low-rank decompose
// workload (analysis + scoring + the winning lrm candidate's full ALM,
// reusing the analysis SVD) and the full-rank WDiscrete workload (LRM
// skipped by the regime gate; the decision costs only the analysis and
// the baselines' closed forms). Tier-1 gated via cmd/lrmbench -compare:
// planner overhead on top of DecomposeBench is the adaptive layer's
// price and must not drift.
func BenchmarkPlan(b *testing.B) {
	wl := benchsuite.PlanLowRankWorkload()
	wf := benchsuite.PlanFullRankWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := Plan(wl, PlanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if pl.Mechanism != "lrm" {
			b.Fatalf("low-rank plan chose %s", pl.Mechanism)
		}
		pf, err := Plan(wf, PlanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if pf.Mechanism == "lrm" {
			b.Fatal("full-rank plan chose lrm")
		}
	}
}

// BenchmarkImplicitPlan measures the structure-aware planning path: a
// Kronecker spec whose assembled matrix would hold 10⁶ cells is planned
// and prepared end to end — closed-form analysis, candidate scoring,
// and the winner's preparation — without ever materializing W. Its cost
// should stay orders of magnitude below BenchmarkPlan's SVD-dominated
// profile, and its allocation footprint must not scale with m·n.
func BenchmarkImplicitPlan(b *testing.B) {
	s := benchsuite.ImplicitPlanSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := PlanSpec(s, PlanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if pl.Prepared() == nil {
			b.Fatal("implicit plan retained no prepared mechanism")
		}
	}
}

// BenchmarkMatMul256Alloc keeps the old allocating-path measurement for
// comparison against BenchmarkMatMul256.
func BenchmarkMatMul256Alloc(b *testing.B) {
	src := rng.New(31)
	x := mat.NewFromData(256, 256, src.NormalVec(256*256, 1))
	y := mat.NewFromData(256, 256, src.NormalVec(256*256, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.Mul(x, y)
	}
}

func BenchmarkSVD128x256(b *testing.B) {
	src := rng.New(32)
	w := mat.NewFromData(128, 256, src.NormalVec(128*256, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.FactorSVD(w)
	}
}

func BenchmarkCholeskySolve128(b *testing.B) {
	src := rng.New(33)
	a := mat.NewFromData(160, 128, src.NormalVec(160*128, 1))
	spd := mat.Gram(a)
	rhs := mat.NewFromData(64, 128, src.NormalVec(64*128, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mat.SolveRightSPD(rhs, spd); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension benches (related/future-work mechanisms; DESIGN.md
// §Extensions) ---

// BenchmarkExtraSynopses regenerates the extension table comparing the
// data-synopsis mechanisms (FPA/CM/NF/SF) with LM, NOR+proj and LRM.
func BenchmarkExtraSynopses(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Synopses(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAblationInitExactSVD measures the default exact-SVD starting
// point on the low-rank regime.
func BenchmarkAblationInitExactSVD(b *testing.B) {
	benchDecompose(b, core.Options{})
}

// BenchmarkAblationInitRandomized swaps in the randomized range-finder
// init (mat.RandSVD); on low-rank workloads it should match the objective
// at lower preparation cost.
func BenchmarkAblationInitRandomized(b *testing.B) {
	benchDecompose(b, core.Options{RandomizedInit: true})
}

func benchSynopsisAnswer(b *testing.B, mech mechanism.Mechanism) {
	b.Helper()
	w := workload.Identity(1024)
	p, err := mech.Prepare(w)
	if err != nil {
		b.Fatal(err)
	}
	x := rng.New(41).UniformVec(1024, 0, 100)
	src := rng.New(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Answer(x, 0.1, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnswerFourier(b *testing.B) { benchSynopsisAnswer(b, mechanism.Fourier{K: 64}) }
func BenchmarkAnswerCompressive(b *testing.B) {
	benchSynopsisAnswer(b, mechanism.Compressive{Measurements: 128, Sparsity: 16, Seed: 1})
}
func BenchmarkAnswerHistogramNF(b *testing.B) {
	benchSynopsisAnswer(b, mechanism.Histogram{Buckets: 64})
}

// BenchmarkRandSVDLowRank measures the randomized SVD on the WRelated
// regime against BenchmarkSVD128x256's exact Jacobi cost.
func BenchmarkRandSVDLowRank(b *testing.B) {
	w := workload.Related(128, 256, 8, rng.New(34)).W
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mat.RandSVD(w, 8, mat.RandSVDOptions{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparseMulVec measures CSR mat-vec on a range workload against
// the dense product below.
func BenchmarkSparseMulVec(b *testing.B) {
	w := workload.Range(256, 4096, rng.New(35))
	a := sparse.FromDense(w.W, 0)
	x := rng.New(36).UniformVec(4096, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(x)
	}
}

// BenchmarkDenseMulVec is the dense counterpart of BenchmarkSparseMulVec.
func BenchmarkDenseMulVec(b *testing.B) {
	w := workload.Range(256, 4096, rng.New(35))
	x := rng.New(36).UniformVec(4096, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MulVec(w.W, x)
	}
}

// BenchmarkFFT4096 measures the unitary FFT on a 4096-point histogram.
func BenchmarkFFT4096(b *testing.B) {
	x := rng.New(37).NormalVec(4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		transform.FFTReal(x)
	}
}

// BenchmarkHaar4096 measures the orthonormal Haar transform.
func BenchmarkHaar4096(b *testing.B) {
	x := rng.New(38).NormalVec(4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		transform.Haar(x)
	}
}

// BenchmarkOMP measures sparse recovery of 16 atoms from 128 Gaussian
// measurements over a 1024 dictionary.
func BenchmarkOMP(b *testing.B) {
	src := rng.New(39)
	k, n := 128, 1024
	a := mat.NewFromData(k, n, src.NormalVec(k*n, 1))
	truth := make([]float64, n)
	for j := 0; j < 16; j++ {
		truth[src.Intn(n)] = src.Normal() * 10
	}
	y := mat.MulVec(a, truth)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compress.OMP(a, y, 16, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVOptimal measures the O(n²B) histogram DP at the default
// extension-table size.
func BenchmarkVOptimal(b *testing.B) {
	x := rng.New(40).UniformVec(512, 0, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hist.VOptimal(x, 32); err != nil {
			b.Fatal(err)
		}
	}
}
