package dataset

import (
	"math"
	"strings"
	"testing"

	"lrm/internal/rng"
)

func TestSummarizeFlatHistogram(t *testing.T) {
	d := &Dataset{Name: "flat", Counts: []float64{5, 5, 5, 5}}
	s, err := d.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Total != 20 || s.Mean != 5 || s.Max != 5 || s.Median != 5 {
		t.Fatalf("stats %+v", s)
	}
	if s.Gini != 0 {
		t.Fatalf("flat histogram Gini %g want 0", s.Gini)
	}
	if s.Roughness != 0 {
		t.Fatalf("flat histogram roughness %g want 0", s.Roughness)
	}
}

func TestSummarizeConcentratedHistogram(t *testing.T) {
	counts := make([]float64, 100)
	counts[0] = 1000 // all mass in one bin
	d := &Dataset{Name: "spike", Counts: counts}
	s, err := d.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Gini < 0.95 {
		t.Fatalf("single-bin histogram Gini %g want ≈0.99", s.Gini)
	}
	if s.Median != 0 || s.Max != 1000 {
		t.Fatalf("stats %+v", s)
	}
}

func TestSummarizeRoughnessSeparatesNoiseFromSmooth(t *testing.T) {
	src := rng.New(1)
	n := 2048
	noise := make([]float64, n)
	smooth := make([]float64, n)
	for i := range noise {
		noise[i] = src.Normal()
		smooth[i] = math.Sin(2 * math.Pi * float64(i) / float64(n))
	}
	sn, err := (&Dataset{Counts: noise}).Summarize()
	if err != nil {
		t.Fatal(err)
	}
	ss, err := (&Dataset{Counts: smooth}).Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sn.Roughness < 1.5 || sn.Roughness > 2.5 {
		t.Fatalf("i.i.d. noise roughness %g want ≈2", sn.Roughness)
	}
	if ss.Roughness > 0.01 {
		t.Fatalf("sinusoid roughness %g want ≈0", ss.Roughness)
	}
}

func TestSummarizeValidation(t *testing.T) {
	if _, err := (&Dataset{}).Summarize(); err == nil {
		t.Fatal("want error for empty dataset")
	}
}

func TestDescribe(t *testing.T) {
	d := SocialNetwork(1024, rng.New(2))
	s, err := d.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	out := s.Describe(d.Name)
	if !strings.Contains(out, "Gini") || !strings.Contains(out, d.Name) {
		t.Fatalf("describe: %s", out)
	}
}
