// Package clean holds epshygiene fixtures that must produce no
// diagnostics: each of the accepted validation forms ahead of the
// sink, a checked Budget.Spend, a checked Accountant.Spend, and a
// handler that commits the spend before the response starts.
package clean

import (
	"net/http"

	"lrm/internal/privacy"
)

type mech struct{}

func (mech) Answer(x []float64, eps privacy.Epsilon) []float64 {
	return x
}

func validated(m mech, x []float64, eps privacy.Epsilon) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	return m.Answer(x, eps), nil
}

func guarded(m mech, x []float64, eps privacy.Epsilon) []float64 {
	if eps <= 0 {
		return nil
	}
	return m.Answer(x, eps)
}

func budgeted(m mech, b *privacy.Budget, x []float64, eps privacy.Epsilon) ([]float64, error) {
	if err := b.Spend(eps); err != nil {
		return nil, err
	}
	return m.Answer(x, eps), nil
}

func accounted(m mech, a *privacy.Accountant, x []float64, eps privacy.Epsilon) ([]float64, error) {
	if err := a.Spend("acme", eps); err != nil {
		return nil, err
	}
	return m.Answer(x, eps), nil
}

func spendThenWrite(w http.ResponseWriter, a *privacy.Accountant, eps privacy.Epsilon) {
	if err := a.Spend("acme", eps); err != nil {
		w.WriteHeader(http.StatusTooManyRequests)
		return
	}
	w.Write([]byte("ok"))
}
