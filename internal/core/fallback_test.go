package core

import (
	"math"
	"testing"

	"lrm/internal/mat"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

func TestIdentityFallbackNeverWorseThanNOD(t *testing.T) {
	// On a hard full-rank workload with a tiny iteration budget, the
	// optimizer alone can lose to noise-on-data; the fallback must cap
	// the error at the NOD level.
	w := workload.Prefix(24)
	opts := Options{
		IdentityFallback: true,
		MaxOuterIter:     5, // deliberately starved
		MaxInnerIter:     2,
		MaxNesterovIter:  10,
	}
	d, err := Decompose(w.W, opts)
	if err != nil {
		t.Fatal(err)
	}
	nod := 2 * mat.SquaredSum(w.W)
	if got := d.ExpectedSSE(1); got > nod*(1+1e-9) {
		t.Fatalf("fallback SSE %v exceeds NOD %v", got, nod)
	}
	if d.Residual != 0 && d.ExpectedSSE(1) > nod {
		t.Fatal("fallback not applied despite worse objective")
	}
}

func TestIdentityFallbackKeepsGoodDecomposition(t *testing.T) {
	// On a low-rank workload the optimizer wins; the fallback must not
	// replace it with the (much worse) identity strategy.
	w := workload.Related(24, 40, 3, rng.New(1))
	d, err := Decompose(w.W, Options{IdentityFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	nod := 2 * mat.SquaredSum(w.W)
	if got := d.ExpectedSSE(1); got > 0.8*nod {
		t.Fatalf("fallback degraded a good decomposition: %v vs NOD %v", got, nod)
	}
	// The kept decomposition must not be the identity (rank r ≪ n).
	if d.L.Rows() == d.L.Cols() && d.L.EqualApprox(mat.Eye(d.L.Cols()), 1e-12) {
		t.Fatal("identity strategy returned despite optimizer winning")
	}
}

func TestIdentityFallbackStillAnswersCorrectly(t *testing.T) {
	w := workload.Prefix(12)
	d, err := Decompose(w.W, Options{IdentityFallback: true, MaxOuterIter: 3, MaxInnerIter: 1, MaxNesterovIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Whatever branch was chosen, B·L must reconstruct W within the
	// residual and the mechanism must be unbiased.
	recon := mat.Mul(d.B, d.L)
	if !recon.EqualApprox(w.W, d.Residual+1e-6) {
		t.Fatal("fallback decomposition does not reconstruct W")
	}
	m, err := NewMechanism(d)
	if err != nil {
		t.Fatal(err)
	}
	x := rng.New(2).UniformVec(12, 0, 100)
	exact := w.Answer(x)
	src := rng.New(3)
	sums := make([]float64, len(exact))
	const trials = 5000
	for i := 0; i < trials; i++ {
		noisy, err := m.Answer(x, 1, src)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range noisy {
			sums[j] += v
		}
	}
	for j, want := range exact {
		if mean := sums[j] / trials; math.Abs(mean-want) > 0.05*math.Abs(want)+5 {
			t.Fatalf("biased answer %d: %v vs %v", j, mean, want)
		}
	}
}
