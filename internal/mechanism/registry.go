package mechanism

import (
	"fmt"
	"sort"
)

// Config carries the cross-mechanism tuning knobs a caller resolving a
// mechanism by name can set. The zero value requests every mechanism's
// default configuration.
type Config struct {
	// Coeffs is the synopsis size where one applies: retained Fourier
	// coefficients (FPA), measurements (CM), or buckets (NF/SF). Zero
	// uses the mechanism default.
	Coeffs int
	// Seed seeds mechanisms that randomize their preparation (CM).
	Seed int64
}

// builders maps the short CLI/server names (the paper's figure labels,
// lowercased) to constructors.
var builders = map[string]func(Config) Mechanism{
	"lrm": func(Config) Mechanism { return LRM{} },
	"lm":  func(Config) Mechanism { return LaplaceData{} },
	"nor": func(Config) Mechanism { return LaplaceResults{} },
	"wm":  func(Config) Mechanism { return Wavelet{} },
	"hm":  func(Config) Mechanism { return Hierarchical{} },
	"mm":  func(Config) Mechanism { return MatrixMechanism{} },
	"fpa": func(c Config) Mechanism { return Fourier{K: c.Coeffs} },
	"cm":  func(c Config) Mechanism { return Compressive{Measurements: c.Coeffs, Seed: c.Seed} },
	"nf":  func(c Config) Mechanism { return Histogram{Buckets: c.Coeffs} },
	"sf":  func(c Config) Mechanism { return Histogram{Buckets: c.Coeffs, StructureFirst: true} },
}

// ByName resolves a mechanism from its short name (lrm, lm, nor, wm, hm,
// mm, fpa, cm, nf, sf), so CLIs and servers share one registry instead of
// each hand-rolling the switch.
func ByName(name string, cfg Config) (Mechanism, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("mechanism: unknown mechanism %q (have %v)", name, Names())
	}
	return b(cfg), nil
}

// Names returns the registered mechanism names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for name := range builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
