package mat

import (
	"sync"
	"testing"

	"lrm/internal/rng"
)

func randDenseSeed(t testing.TB, r, c int, seed int64) *Dense {
	t.Helper()
	src := rng.New(seed)
	m := New(r, c)
	for i := range m.data {
		m.data[i] = src.Normal()
	}
	return m
}

// TestInPlaceMatchAllocating checks every *To kernel against its
// allocating counterpart, including destinations pre-filled with garbage
// (the workspace-reuse scenario).
func TestInPlaceMatchAllocating(t *testing.T) {
	a := randDenseSeed(t, 7, 5, 1)
	b := randDenseSeed(t, 7, 5, 2)
	p := randDenseSeed(t, 5, 9, 3)
	garbage := func(r, c int) *Dense {
		g := New(r, c)
		for i := range g.data {
			g.data[i] = 1e30
		}
		return g
	}
	cases := []struct {
		name string
		want *Dense
		got  *Dense
	}{
		{"AddTo", Add(a, b), AddTo(garbage(7, 5), a, b)},
		{"SubTo", Sub(a, b), SubTo(garbage(7, 5), a, b)},
		{"ScaleTo", Scale(2.5, a), ScaleTo(garbage(7, 5), 2.5, a)},
		{"AddScaledTo", AddScaled(a, -1.25, b), AddScaledTo(garbage(7, 5), a, -1.25, b)},
		{"ElemMulTo", ElemMul(a, b), ElemMulTo(garbage(7, 5), a, b)},
		{"TransposeTo", a.T(), TransposeTo(garbage(5, 7), a)},
		{"MulTo", Mul(a, p), MulTo(garbage(7, 9), a, p)},
		{"MulABtTo", MulABt(a, b), MulABtTo(garbage(7, 7), a, b)},
		{"MulAtBTo", MulAtB(a, b), MulAtBTo(garbage(5, 5), a, b)},
		{"GramTo", Gram(a), GramTo(garbage(5, 5), a)},
		{"GramTTo", GramT(a), GramTTo(garbage(7, 7), a)},
	}
	for _, tc := range cases {
		if !tc.want.Equal(tc.got) {
			t.Errorf("%s disagrees with allocating version", tc.name)
		}
	}

	x := rng.New(4).NormalVec(5, 1)
	want := MulVec(a, x)
	got := MulVecTo(make([]float64, 7), a, x)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("MulVecTo[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	xt := rng.New(5).NormalVec(7, 1)
	wantT := MulVecT(a, xt)
	gotT := MulVecTTo(make([]float64, 5), a, xt)
	for i := range wantT {
		if wantT[i] != gotT[i] {
			t.Fatalf("MulVecTTo[%d] = %v, want %v", i, gotT[i], wantT[i])
		}
	}
}

// TestInPlaceElementwiseAliasing checks that the element-wise kernels
// accept dst aliasing an operand.
func TestInPlaceElementwiseAliasing(t *testing.T) {
	a := randDenseSeed(t, 4, 6, 11)
	b := randDenseSeed(t, 4, 6, 12)
	want := Add(a, b)
	got := a.Clone()
	AddTo(got, got, b)
	if !want.Equal(got) {
		t.Error("AddTo with dst aliasing a disagrees")
	}
	want = AddScaled(a, 3, b)
	got = a.Clone()
	AddScaledTo(got, got, 3, b)
	if !want.Equal(got) {
		t.Error("AddScaledTo with dst aliasing a disagrees")
	}
	want = Scale(-2, a)
	got = a.Clone()
	ScaleTo(got, -2, got)
	if !want.Equal(got) {
		t.Error("ScaleTo in place disagrees")
	}
}

// TestMulToAliasPanics is the regression test for the aliasing guard:
// products that accumulate into dst must refuse destinations sharing
// storage with an operand instead of silently corrupting them.
func TestMulToAliasPanics(t *testing.T) {
	square := randDenseSeed(t, 6, 6, 21)
	other := randDenseSeed(t, 6, 6, 22)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: aliased destination did not panic", name)
			}
		}()
		f()
	}
	mustPanic("MulTo dst=a", func() { MulTo(square, square, other) })
	mustPanic("MulTo dst=b", func() { MulTo(square, other, square) })
	// Two distinct headers over one backing slice must be caught too.
	view := NewFromData(6, 6, square.RawData())
	mustPanic("MulTo dst views a", func() { MulTo(view, square, other) })
	// Offset views with different first elements but overlapping ranges.
	offDst := NewFromData(2, 2, square.RawData()[1:5])
	offA := NewFromData(2, 2, square.RawData()[0:4])
	small := randDenseSeed(t, 2, 2, 23)
	mustPanic("MulTo dst offset-overlaps a", func() { MulTo(offDst, offA, small) })
	mustPanic("MulABtTo dst=a", func() { MulABtTo(square, square, other) })
	mustPanic("MulAtBTo dst=b", func() { MulAtBTo(square, other, square) })
	mustPanic("GramTo dst=a", func() { GramTo(square, square) })
	mustPanic("GramTTo dst=a", func() { GramTTo(square, square) })
	mustPanic("TransposeTo dst=a", func() { TransposeTo(square, square) })
}

// TestMulSerialParallelBitForBit pins the boundary behavior of the row
// scheduler: the same product computed just below, exactly at, and just
// above parallelThreshold must agree bit-for-bit with the forced-serial
// path. The kernel only partitions output rows — each row is accumulated
// by exactly one goroutine in the same order as the serial loop — so
// equality is exact, not approximate.
func TestMulSerialParallelBitForBit(t *testing.T) {
	saved := setParallelThreshold(1)
	defer setParallelThreshold(saved)

	// 128×128 · 128×128 is exactly 2²¹ multiply-adds = parallelThreshold.
	for _, n := range []int{127, 128, 129} {
		a := randDenseSeed(t, n, n, int64(100+n))
		b := randDenseSeed(t, n, n, int64(200+n))

		setParallelThreshold(1) // force the parallel path
		viaParallel := Mul(a, b)
		gramParallel := GramT(a)
		atbParallel := MulAtB(a, b)
		abtParallel := MulABt(a, b)

		setParallelThreshold(1 << 62) // force the serial path
		viaSerial := Mul(a, b)
		gramSerial := GramT(a)
		atbSerial := MulAtB(a, b)
		abtSerial := MulABt(a, b)

		setParallelThreshold(saved) // default dispatch straddles the boundary
		viaDefault := Mul(a, b)

		if !viaParallel.Equal(viaSerial) {
			t.Errorf("n=%d: parallel and serial Mul differ", n)
		}
		if !viaDefault.Equal(viaSerial) {
			t.Errorf("n=%d: default-dispatch and serial Mul differ", n)
		}
		if !gramParallel.Equal(gramSerial) {
			t.Errorf("n=%d: parallel and serial GramT differ", n)
		}
		if !atbParallel.Equal(atbSerial) {
			t.Errorf("n=%d: parallel and serial MulAtB differ", n)
		}
		if !abtParallel.Equal(abtSerial) {
			t.Errorf("n=%d: parallel and serial MulABt differ", n)
		}
	}
}

// TestParallelKernelsConcurrent hammers the forking kernels from many
// goroutines sharing read-only operands; run under -race it proves the
// row partitioning never writes across worker boundaries.
func TestParallelKernelsConcurrent(t *testing.T) {
	saved := setParallelThreshold(1) // every product goes through the pool
	defer setParallelThreshold(saved)

	a := randDenseSeed(t, 64, 48, 31)
	b := randDenseSeed(t, 48, 56, 32)
	wantMul := Mul(a, b)
	wantGram := GramT(a)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if got := Mul(a, b); !got.Equal(wantMul) {
					t.Error("concurrent Mul mismatch")
					return
				}
				dst := New(64, 56)
				if got := MulTo(dst, a, b); !got.Equal(wantMul) {
					t.Error("concurrent MulTo mismatch")
					return
				}
				if got := GramT(a); !got.Equal(wantGram) {
					t.Error("concurrent GramT mismatch")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestWorkspaceReuse checks that the workspace recycles capacity, zeroes
// reissued buffers, and prefers the smallest adequate buffer.
func TestWorkspaceReuse(t *testing.T) {
	ws := NewWorkspace()
	m := ws.Get(4, 6)
	if r, c := m.Dims(); r != 4 || c != 6 {
		t.Fatalf("Get returned %d×%d, want 4×6", r, c)
	}
	backing := &m.RawData()[0]
	for i := range m.RawData() {
		m.RawData()[i] = 7
	}
	ws.Put(m)

	// Smaller request must reuse the retired buffer and come back zeroed.
	n := ws.Get(3, 5)
	if &n.RawData()[0] != backing {
		t.Error("Get did not reuse retired capacity")
	}
	for i, v := range n.RawData() {
		if v != 0 {
			t.Fatalf("reissued buffer not zeroed at %d: %v", i, v)
		}
	}

	// A larger request than anything retired allocates fresh.
	big := ws.Get(50, 50)
	if &big.RawData()[0] == backing {
		t.Error("Get reused a too-small buffer")
	}

	// Best fit: with a small and a big buffer retired, a small request
	// should take the small one.
	ws.Put(n)
	ws.Put(big)
	small := ws.Get(3, 5)
	if &small.RawData()[0] != backing {
		t.Error("Get did not prefer the smallest adequate buffer")
	}

	v := ws.GetVec(8)
	if len(v) != 8 {
		t.Fatalf("GetVec length %d, want 8", len(v))
	}
	v[0] = 3
	ws.PutVec(v)
	v2 := ws.GetVec(4)
	if &v2[0] != &v[0] {
		t.Error("GetVec did not reuse retired capacity")
	}
	if v2[0] != 0 {
		t.Error("reissued vector not zeroed")
	}
}

// TestSolveRightSPDTo checks the allocation-free solve against the
// allocating wrapper, including dst aliasing b (the ALM's B-update
// overwrites its right-hand side in place).
func TestSolveRightSPDTo(t *testing.T) {
	g := randDenseSeed(t, 12, 8, 41)
	spd := Gram(g) // 8×8 SPD
	b := randDenseSeed(t, 5, 8, 42)
	want, err := SolveRightSPD(b, spd)
	if err != nil {
		t.Fatal(err)
	}
	dst := New(5, 8)
	if err := SolveRightSPDTo(dst, b, spd, New(8, 8)); err != nil {
		t.Fatal(err)
	}
	if !want.Equal(dst) {
		t.Error("SolveRightSPDTo disagrees with SolveRightSPD")
	}
	inPlace := b.Clone()
	if err := SolveRightSPDTo(inPlace, inPlace, spd, New(8, 8)); err != nil {
		t.Fatal(err)
	}
	if !want.Equal(inPlace) {
		t.Error("SolveRightSPDTo in place disagrees")
	}
	// Partial overlap is neither a fresh dst nor an in-place solve: the
	// skipped copy would read half-corrupted rows, so it must panic
	// rather than return garbage.
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	backing := make([]float64, 6*8)
	full := NewFromData(5, 8, backing[:5*8])
	shifted := NewFromData(5, 8, backing[8:])
	mustPanic("SolveRightSPDTo partial overlap", func() {
		_ = SolveRightSPDTo(shifted, full, spd, New(8, 8))
	})
	mustPanic("SolveRightSPDTo lwork aliases a", func() {
		_ = SolveRightSPDTo(New(5, 8), b, spd, spd)
	})
	// lwork carved from the same workspace backing as b (or dst) — the
	// factorization would scribble over rows mid-solve.
	shared := make([]float64, 104)
	bAlias := NewFromData(5, 8, shared[:40])
	copy(bAlias.RawData(), b.RawData())
	mustPanic("SolveRightSPDTo lwork overlaps b", func() {
		_ = SolveRightSPDTo(New(5, 8), bAlias, spd, NewFromData(8, 8, shared[20:84]))
	})
	dstShared := make([]float64, 104)
	mustPanic("SolveRightSPDTo lwork overlaps dst", func() {
		_ = SolveRightSPDTo(NewFromData(5, 8, dstShared[:40]), b, spd, NewFromData(8, 8, dstShared[20:84]))
	})
}

// TestLambdaMaxSymBuf checks the buffered power iteration matches the
// allocating wrapper exactly.
func TestLambdaMaxSymBuf(t *testing.T) {
	g := randDenseSeed(t, 10, 6, 51)
	spd := Gram(g)
	want := LambdaMaxSym(spd, 200)
	got := LambdaMaxSymBuf(spd, 200, make([]float64, 6), make([]float64, 6))
	if want != got {
		t.Errorf("LambdaMaxSymBuf = %v, want %v", got, want)
	}
}

// TestTraceMul checks tr(a·b) against the materialized product.
func TestTraceMul(t *testing.T) {
	a := randDenseSeed(t, 6, 9, 61)
	b := randDenseSeed(t, 9, 6, 62)
	want := Trace(Mul(a, b))
	got := TraceMul(a, b)
	if diff := want - got; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("TraceMul = %v, want %v", got, want)
	}
}
