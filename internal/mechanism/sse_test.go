package mechanism

import (
	"math"
	"testing"

	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// ExpectedSSE honesty: the planner ranks candidates by these closed
// forms, so they must match reality, not just each other. For LM and NOR
// the analytic value (2·ΣW²/ε² and 2m·Δ'²/ε²) is pinned against the
// empirical mean SSE over many seeded releases — with enough trials that
// the Monte-Carlo error sits well inside the tolerance band — at two
// budgets per mechanism, which also pins the 1/ε² scaling the ranking
// relies on. (TestLaplace*AnalyticVsEmpirical cover one budget each on a
// different workload; this is the planner-facing contract test.)
func TestExpectedSSEHonesty(t *testing.T) {
	w := workload.Range(16, 32, rng.New(3))
	x := rng.New(4).UniformVec(32, 0, 100)
	const trials = 4000
	// Monte-Carlo std of the mean SSE is a few percent at 4000 trials
	// (each trial sums 16 correlated squared-Laplace terms); 0.10 is a
	// comfortable band that still catches any mis-derived constant — the
	// nearest wrong formulas (a factor 2, a missing square) are off by
	// 100% or more.
	const tol = 0.10
	cases := []struct {
		name string
		mech Mechanism
	}{
		{"LM", LaplaceData{}},
		{"NOR", LaplaceResults{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := tc.mech.Prepare(w)
			if err != nil {
				t.Fatal(err)
			}
			for i, eps := range []privacy.Epsilon{1, 0.25} {
				analytic := p.ExpectedSSE(eps)
				if math.IsNaN(analytic) || analytic <= 0 {
					t.Fatalf("analytic SSE %v at ε=%g", analytic, float64(eps))
				}
				got := empiricalSSE(t, p, w, x, eps, trials, rng.New(int64(101+i)))
				if rel := math.Abs(got-analytic) / analytic; rel > tol {
					t.Fatalf("ε=%g: empirical mean SSE %g vs analytic %g (relative error %.3f > %.2f)",
						float64(eps), got, analytic, rel, tol)
				}
			}
		})
	}
}
