package core

import (
	"math"
	"testing"

	"lrm/internal/mat"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

func TestBoundsPositiveAndCapped(t *testing.T) {
	// Lemma 4's lower bound carries an Ω constant, so Upper >= Lower is
	// only guaranteed asymptotically; what the proof chain does guarantee
	// unconditionally is ApproxRatio <= TheoremTwoBound.
	src := rng.New(1)
	for _, w := range []*workload.Workload{
		workload.Related(20, 25, 4, src),
		workload.Range(30, 20, src),
		workload.Prefix(16),
		workload.Identity(10),
	} {
		b := AnalyzeBounds(w.W, 0.5)
		if b.Upper <= 0 || b.Lower <= 0 {
			t.Fatalf("%s: non-positive bounds %+v", w.Name, b)
		}
		if b.ApproxRatio > b.TheoremTwoBound()*(1+1e-9) {
			t.Fatalf("%s: ratio %v exceeds cap %v", w.Name, b.ApproxRatio, b.TheoremTwoBound())
		}
	}
}

func TestBoundsIdentityExact(t *testing.T) {
	// For W = I_n: all λ = 1, C = 1. Upper = 2n²/ε²;
	// Lower = (2ⁿ/n!)^{2/n}·n³/ε².
	n := 8
	eps := 1.0
	b := AnalyzeBounds(mat.Eye(n), eps)
	if b.Rank != n {
		t.Fatalf("rank = %d", b.Rank)
	}
	if math.Abs(b.ConditionNumber-1) > 1e-9 {
		t.Fatalf("C = %v", b.ConditionNumber)
	}
	wantUpper := 2 * float64(n) * float64(n)
	if math.Abs(b.Upper-wantUpper) > 1e-6*wantUpper {
		t.Fatalf("Upper = %v, want %v", b.Upper, wantUpper)
	}
	fact := 1.0
	for i := 2; i <= n; i++ {
		fact *= float64(i)
	}
	wantLower := math.Pow(math.Pow(2, float64(n))/fact, 2/float64(n)) * math.Pow(float64(n), 3)
	if math.Abs(b.Lower-wantLower) > 1e-6*wantLower {
		t.Fatalf("Lower = %v, want %v", b.Lower, wantLower)
	}
}

func TestBoundsEpsilonScaling(t *testing.T) {
	w := workload.Prefix(12).W
	b1 := AnalyzeBounds(w, 1)
	b01 := AnalyzeBounds(w, 0.1)
	if math.Abs(b01.Upper/b1.Upper-100) > 1e-6 {
		t.Fatal("Upper does not scale as 1/ε²")
	}
	if math.Abs(b01.Lower/b1.Lower-100) > 1e-6 {
		t.Fatal("Lower does not scale as 1/ε²")
	}
}

func TestTheoremTwoBoundHolds(t *testing.T) {
	// For r > 5 the approximation ratio obeys Theorem 2's cap.
	src := rng.New(2)
	for _, w := range []*workload.Workload{
		workload.Related(30, 30, 8, src),
		workload.Prefix(20),
		workload.Identity(12),
	} {
		b := AnalyzeBounds(w.W, 1)
		if b.Rank <= 5 {
			continue
		}
		if cap := b.TheoremTwoBound(); b.ApproxRatio > cap*(1+1e-9) {
			t.Fatalf("%s: ratio %v exceeds Theorem 2 cap %v", w.Name, b.ApproxRatio, cap)
		}
	}
}

func TestTheoremTwoTightWhenCIsOne(t *testing.T) {
	// With C = 1 (identity), the ratio equals the cap exactly (the
	// proof's inequalities are tight).
	b := AnalyzeBounds(mat.Eye(10), 1)
	if math.Abs(b.ApproxRatio-b.TheoremTwoBound()) > 1e-6*b.ApproxRatio {
		t.Fatalf("ratio %v != cap %v despite C=1", b.ApproxRatio, b.TheoremTwoBound())
	}
}

func TestLRMWithinUpperBound(t *testing.T) {
	// Lemma 3: the optimized decomposition's error is at most the bound
	// attained by the SVD-based feasible point.
	src := rng.New(3)
	w := workload.Related(18, 22, 3, src).W
	d, err := Decompose(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eps := 1.0
	b := AnalyzeBounds(w, eps)
	if got := d.ExpectedSSE(eps); got > b.Upper*(1+1e-6) {
		t.Fatalf("LRM SSE %v exceeds Lemma 3 bound %v", got, b.Upper)
	}
}

func TestBoundsZeroMatrix(t *testing.T) {
	b := AnalyzeBounds(mat.New(4, 4), 1)
	if b.Rank != 0 || b.Upper != 0 {
		t.Fatalf("zero workload bounds: %+v", b)
	}
	if b.TheoremTwoBound() != 0 {
		t.Fatal("TheoremTwoBound nonzero for rank 0")
	}
}
