package sparse

import (
	"math"
	"testing"

	"lrm/internal/mat"
	"lrm/internal/rng"
)

func TestCGLSSquareSystem(t *testing.T) {
	// A well-conditioned square system: CGLS solves it exactly.
	d := mat.FromRows([][]float64{
		{4, 1, 0},
		{1, 3, 1},
		{0, 1, 5},
	})
	a := FromDense(d, 0)
	truth := []float64{1, -2, 0.5}
	b := a.MulVec(truth)
	res, err := CGLS(a, b, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	for i := range truth {
		if math.Abs(res.X[i]-truth[i]) > 1e-8 {
			t.Fatalf("x[%d]=%g want %g", i, res.X[i], truth[i])
		}
	}
}

func TestCGLSMatchesDenseLeastSquares(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		m := 10 + src.Intn(10)
		n := 3 + src.Intn(5)
		d := randomDense(m, n, 0.6, src)
		if mat.Rank(d) < n {
			continue // CGLS min-norm vs QR pivoting differ when deficient
		}
		a := FromDense(d, 0)
		b := src.NormalVec(m, 1)
		want, err := mat.LeastSquares(d, b)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CGLS(a, b, 0, 1e-13)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: x[%d]=%g want %g", trial, i, res.X[i], want[i])
			}
		}
	}
}

func TestCGLSZeroRHS(t *testing.T) {
	a := Identity(4)
	res, err := CGLS(a, make([]float64, 4), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: %+v", res)
	}
	for _, v := range res.X {
		if v != 0 {
			t.Fatal("nonzero solution for zero rhs")
		}
	}
}

func TestCGLSValidation(t *testing.T) {
	a := Identity(3)
	if _, err := CGLS(a, make([]float64, 2), 0, 0); err == nil {
		t.Fatal("want error for rhs length mismatch")
	}
}

func TestCGLSIterationCap(t *testing.T) {
	// With maxIter = 1 on a non-trivial system, CGLS stops early and
	// reports non-convergence.
	src := rng.New(2)
	d := randomDense(20, 10, 0.8, src)
	a := FromDense(d, 0)
	b := src.NormalVec(20, 1)
	res, err := CGLS(a, b, 1, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("cannot converge to 1e-15 in one iteration")
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations %d", res.Iterations)
	}
}
