package mechanism

import (
	"fmt"

	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// Hierarchical is the paper's HM baseline: the Boost method of Hay,
// Rastogi, Miklau and Suciu (PVLDB 2010). Noisy counts are released for
// every node of a b-ary tree over the domain (each level costs ε/ℓ), then
// the counts are made mutually consistent by the closed-form least-squares
// estimate (their two-pass algorithm), which provably reduces variance.
// Range-query error grows polylogarithmically in the domain size.
type Hierarchical struct {
	// Branch is the tree fanout b (default 2).
	Branch int
}

// Name implements Mechanism.
func (Hierarchical) Name() string { return "HM" }

// Prepare implements Mechanism.
func (h Hierarchical) Prepare(w *workload.Workload) (Prepared, error) {
	if w == nil || w.W == nil {
		return nil, fmt.Errorf("mechanism: nil workload")
	}
	b := h.Branch
	if b == 0 {
		b = 2
	}
	if b < 2 {
		return nil, fmt.Errorf("mechanism: hierarchical branch %d < 2", b)
	}
	n := w.Domain()
	padded, levels := 1, 1
	for padded < n {
		padded *= b
		levels++
	}
	return &hierarchicalPrepared{w: w, n: n, padded: padded, levels: levels, b: b}, nil
}

type hierarchicalPrepared struct {
	w      *workload.Workload
	n      int
	padded int // b^(levels−1)
	levels int // ℓ, counting root and leaves
	b      int
}

// Answer implements Prepared.
//
//lrm:sanitizer — every subtree sum is Laplace-perturbed
func (p *hierarchicalPrepared) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if len(x) != p.n {
		return nil, fmt.Errorf("mechanism: data length %d != domain %d", len(x), p.n)
	}
	b := p.b
	// Nodes in heap-like order for a b-ary tree: level ℓ has b^ℓ nodes,
	// stored level by level; levelStart[ℓ] indexes the first.
	levelStart := make([]int, p.levels+1)
	total := 0
	for lev := 0; lev < p.levels; lev++ {
		levelStart[lev] = total
		total += pow(b, lev)
	}
	levelStart[p.levels] = total

	// Exact subtree sums bottom-up.
	sums := make([]float64, total)
	leafBase := levelStart[p.levels-1]
	for i := 0; i < p.n; i++ {
		sums[leafBase+i] = x[i]
	}
	for lev := p.levels - 2; lev >= 0; lev-- {
		for i := 0; i < pow(b, lev); i++ {
			var s float64
			for c := 0; c < b; c++ {
				s += sums[levelStart[lev+1]+i*b+c]
			}
			sums[levelStart[lev]+i] = s
		}
	}

	// Each record appears in ℓ node counts, so per-node noise is
	// Lap(ℓ/ε).
	scale := float64(p.levels) / float64(eps)
	z := make([]float64, total)
	for i := range z {
		z[i] = sums[i] + src.Laplace(scale)
	}

	xhat := p.consistency(z, levelStart)
	return p.w.Answer(xhat[:p.n]), nil
}

// consistency runs Hay et al.'s two-pass least-squares estimate and
// returns the consistent leaf counts.
func (p *hierarchicalPrepared) consistency(z []float64, levelStart []int) []float64 {
	b := p.b
	total := levelStart[p.levels]
	zbar := make([]float64, total)
	// Bottom-up pass. Height i counts leaves as height 1.
	leafBase := levelStart[p.levels-1]
	for i := leafBase; i < total; i++ {
		zbar[i] = z[i]
	}
	for lev := p.levels - 2; lev >= 0; lev-- {
		height := p.levels - lev // root has the largest height
		bi := float64(pow(b, height))
		bi1 := float64(pow(b, height-1))
		wOwn := (bi - bi1) / (bi - 1)
		wKids := (bi1 - 1) / (bi - 1)
		for i := 0; i < pow(b, lev); i++ {
			var kids float64
			for c := 0; c < b; c++ {
				kids += zbar[levelStart[lev+1]+i*b+c]
			}
			zbar[levelStart[lev]+i] = wOwn*z[levelStart[lev]+i] + wKids*kids
		}
	}
	// Top-down pass.
	xbar := make([]float64, total)
	xbar[0] = zbar[0]
	for lev := 1; lev < p.levels; lev++ {
		for parent := 0; parent < pow(b, lev-1); parent++ {
			var sibs float64
			for c := 0; c < b; c++ {
				sibs += zbar[levelStart[lev]+parent*b+c]
			}
			adj := (xbar[levelStart[lev-1]+parent] - sibs) / float64(b)
			for c := 0; c < b; c++ {
				idx := levelStart[lev] + parent*b + c
				xbar[idx] = zbar[idx] + adj
			}
		}
	}
	return xbar[leafBase:]
}

// ExpectedSSE implements Prepared; no closed form is implemented for the
// post-consistency error (the experiments measure it by Monte Carlo).
func (p *hierarchicalPrepared) ExpectedSSE(privacy.Epsilon) float64 {
	return NoAnalyticSSE()
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}
