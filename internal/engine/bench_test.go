package engine

import (
	"testing"

	"lrm/internal/core"
	"lrm/internal/mechanism"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// BenchmarkEngineBatch measures the pooled fan-out path: one request
// carrying a batch of histograms over a cached workload. (The root
// package's BenchmarkEngineAnswer covers the single-histogram cache-hit
// path against the bare-Prepared baseline.)
func BenchmarkEngineBatch(b *testing.B) {
	e, err := New(Options{Mechanism: mechanism.LRM{Options: core.Options{MaxOuterIter: 10}}})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	w := workload.Related(32, 256, 4, rng.New(1))
	const batch = 16
	xs := make([][]float64, batch)
	for i := range xs {
		xs[i] = rng.New(int64(i)).UniformVec(w.Domain(), 0, 100)
	}
	req := Request{Workload: w, Histograms: xs, Eps: 0.1, Seed: 2}
	if _, err := e.Answer(req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Answer(req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := e.Stats(); st.Prepares != 1 {
		b.Fatalf("cache-hit path ran %d prepares, want 1", st.Prepares)
	}
}
