package main

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Admission control and graceful degradation: the server bounds how much
// work it accepts instead of letting load pile up in goroutines until
// everything is slow. A fixed number of requests run concurrently
// (-max-inflight); a bounded queue of waiters forms behind them
// (-queue); past that the server answers 429 with a Retry-After hint
// immediately, which costs the caller milliseconds instead of a timeout
// and costs the server nothing.
//
// Degradation is ordered by what a request would cost. A warm request —
// its workload's preparation is resident — only needs noise and a few
// GEMVs, so it may wait in the queue. A cold request triggers a full
// decomposition, the most expensive thing the server does, so under
// pressure it is the first thing to go: cold requests are admitted only
// when a slot is immediately free. The server thus degrades from "answer
// everything" to "answer what's already paid for" before it degrades to
// "reject".

// errOverloaded rejects a request when the wait queue is full.
var errOverloaded = errors.New("overloaded: admission queue full")

// errShedCold rejects a cold-workload request when all slots are busy:
// preparing a new workload under pressure would slow every queued
// warm request behind one optimizer run.
var errShedCold = errors.New("overloaded: cold workload shed, retry when load drops")

// admission is a bounded concurrency gate: up to cap(sem) requests run,
// up to queue more wait, the rest are rejected immediately.
type admission struct {
	sem        chan struct{}
	queue      int
	retryAfter time.Duration
	waiting    atomic.Int64

	// Counters for /stats.
	admitted, rejected, shed atomic.Uint64
}

// newAdmission builds a gate for maxInflight concurrent requests and
// queue waiters. retryAfter is the hint sent with every 429.
func newAdmission(maxInflight, queue int, retryAfter time.Duration) *admission {
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &admission{
		sem:        make(chan struct{}, maxInflight),
		queue:      queue,
		retryAfter: retryAfter,
	}
}

// acquire claims a slot, waiting in the bounded queue if necessary.
// Cold requests do not queue — they need a free slot now or are shed.
// A caller whose context ends while waiting releases its queue position
// and returns the context's error without ever holding a slot.
func (a *admission) acquire(ctx context.Context, cold bool) error {
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		return nil
	default:
	}
	if cold {
		a.shed.Add(1)
		return errShedCold
	}
	if a.waiting.Add(1) > int64(a.queue) {
		a.waiting.Add(-1)
		a.rejected.Add(1)
		return errOverloaded
	}
	defer a.waiting.Add(-1)
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot claimed by acquire.
func (a *admission) release() { <-a.sem }

// admissionStats is the admission section of GET /stats.
type admissionStats struct {
	MaxInflight int    `json:"max_inflight"`
	Queue       int    `json:"queue"`
	Waiting     int64  `json:"waiting"`
	Admitted    uint64 `json:"admitted"`
	Rejected    uint64 `json:"rejected"`
	Shed        uint64 `json:"shed"`
}

func (a *admission) stats() *admissionStats {
	return &admissionStats{
		MaxInflight: cap(a.sem),
		Queue:       a.queue,
		Waiting:     a.waiting.Load(),
		Admitted:    a.admitted.Load(),
		Rejected:    a.rejected.Load(),
		Shed:        a.shed.Load(),
	}
}
