package hist

import (
	"math"
	"testing"
	"testing/quick"

	"lrm/internal/rng"
)

// bruteVOptimal enumerates every B-bucket split of counts and returns the
// minimal SSE — the reference for the DP implementation.
func bruteVOptimal(counts []float64, b int) float64 {
	n := len(counts)
	t := newSSETable(counts)
	best := math.MaxFloat64
	// Choose b−1 interior boundaries from positions 1..n−1.
	var rec func(start, left int, acc float64, prev int)
	rec = func(start, left int, acc float64, prev int) {
		if left == 0 {
			total := acc + t.sse(prev, n)
			if total < best {
				best = total
			}
			return
		}
		for p := start; p <= n-left; p++ {
			rec(p+1, left-1, acc+t.sse(prev, p), p)
		}
	}
	rec(1, b-1, 0, 0)
	return best
}

func TestVOptimalMatchesBruteForce(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 25; trial++ {
		n := 3 + src.Intn(8)
		b := 1 + src.Intn(n)
		counts := src.UniformVec(n, 0, 20)
		_, got, err := VOptimal(counts, b)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteVOptimal(counts, b)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d (n=%d b=%d): DP %g brute %g", trial, n, b, got, want)
		}
	}
}

func TestVOptimalExactBuckets(t *testing.T) {
	// Piecewise-constant data with 3 segments has zero SSE at B = 3.
	counts := []float64{5, 5, 5, 9, 9, 2, 2, 2, 2}
	boundaries, sse, err := VOptimal(counts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sse > 1e-12 {
		t.Fatalf("SSE %g should be 0 for exact segmentation", sse)
	}
	want := []int{0, 3, 5}
	for i := range want {
		if boundaries[i] != want[i] {
			t.Fatalf("boundaries %v want %v", boundaries, want)
		}
	}
}

func TestVOptimalSingleBucket(t *testing.T) {
	counts := []float64{1, 2, 3, 4}
	boundaries, sse, err := VOptimal(counts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(boundaries) != 1 || boundaries[0] != 0 {
		t.Fatalf("boundaries %v", boundaries)
	}
	// SSE around mean 2.5: (1.5² + 0.5²)·2 = 5.
	if math.Abs(sse-5) > 1e-12 {
		t.Fatalf("sse %g want 5", sse)
	}
}

func TestVOptimalNBuckets(t *testing.T) {
	counts := []float64{7, 1, 9}
	boundaries, sse, err := VOptimal(counts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sse != 0 {
		t.Fatalf("one bucket per cell must have zero SSE, got %g", sse)
	}
	for i, b := range boundaries {
		if b != i {
			t.Fatalf("boundaries %v", boundaries)
		}
	}
}

func TestVOptimalValidation(t *testing.T) {
	if _, _, err := VOptimal(nil, 1); err == nil {
		t.Fatal("want error for empty counts")
	}
	if _, _, err := VOptimal([]float64{1, 2}, 0); err == nil {
		t.Fatal("want error for zero buckets")
	}
	if _, _, err := VOptimal([]float64{1, 2}, 3); err == nil {
		t.Fatal("want error for more buckets than cells")
	}
}

func TestVOptimalMonotoneInBuckets(t *testing.T) {
	// Property: optimal SSE is non-increasing in the bucket budget.
	f := func(seed int64) bool {
		s := rng.New(seed)
		n := 4 + s.Intn(12)
		counts := s.UniformVec(n, 0, 50)
		prev := math.MaxFloat64
		for b := 1; b <= n; b++ {
			_, sse, err := VOptimal(counts, b)
			if err != nil || sse > prev+1e-9 {
				return false
			}
			prev = sse
		}
		return prev < 1e-9 // B = n is exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSmooth(t *testing.T) {
	counts := []float64{2, 4, 10, 20}
	out, err := Smooth(counts, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 3, 15, 15}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("Smooth %v want %v", out, want)
		}
	}
	// Smoothing preserves the total.
	var a, b float64
	for i := range counts {
		a += counts[i]
		b += out[i]
	}
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("total changed: %g vs %g", a, b)
	}
}

func TestSmoothValidation(t *testing.T) {
	counts := []float64{1, 2, 3}
	for _, bad := range [][]int{nil, {1}, {0, 0}, {0, 3}, {0, 2, 1}} {
		if _, err := Smooth(counts, bad); err == nil {
			t.Fatalf("want error for boundaries %v", bad)
		}
	}
}

func TestNoiseFirstReducesErrorOnBlockyData(t *testing.T) {
	// Blocky data (few distinct levels over long runs): bucket averaging
	// should cut the Laplace error well below the per-cell noise floor.
	n := 128
	x := make([]float64, n)
	for i := range x {
		switch {
		case i < 40:
			x[i] = 100
		case i < 90:
			x[i] = 30
		default:
			x[i] = 70
		}
	}
	src := rng.New(7)
	const eps = 0.5
	const trials = 20
	var histSSE, rawSSE float64
	for trial := 0; trial < trials; trial++ {
		res, err := NoiseFirst(x, 8, eps, src)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			d := res.Estimate[i] - x[i]
			histSSE += d * d
			e := src.Laplace(1 / eps)
			rawSSE += e * e
		}
	}
	if histSSE >= rawSSE/2 {
		t.Fatalf("NoiseFirst SSE %g should be well below raw Laplace SSE %g", histSSE/trials, rawSSE/trials)
	}
}

func TestNoiseFirstValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := NoiseFirst(nil, 1, 1, src); err == nil {
		t.Fatal("want error for empty data")
	}
	if _, err := NoiseFirst([]float64{1}, 1, 0, src); err == nil {
		t.Fatal("want error for zero epsilon")
	}
	if _, err := NoiseFirst([]float64{1, 2}, 5, 1, src); err == nil {
		t.Fatal("want error for too many buckets")
	}
}

func TestStructureFirstValidation(t *testing.T) {
	src := rng.New(1)
	x := []float64{1, 2, 3, 4}
	if _, err := StructureFirst(nil, StructureFirstOptions{Buckets: 1}, 1, src); err == nil {
		t.Fatal("want error for empty data")
	}
	if _, err := StructureFirst(x, StructureFirstOptions{Buckets: 0}, 1, src); err == nil {
		t.Fatal("want error for zero buckets")
	}
	if _, err := StructureFirst(x, StructureFirstOptions{Buckets: 2, StructureFraction: 1.5}, 1, src); err == nil {
		t.Fatal("want error for fraction out of range")
	}
	if _, err := StructureFirst(x, StructureFirstOptions{Buckets: 2, MaxCount: -1}, 1, src); err == nil {
		t.Fatal("want error for negative MaxCount")
	}
	if _, err := StructureFirst(x, StructureFirstOptions{Buckets: 2}, 0, src); err == nil {
		t.Fatal("want error for zero epsilon")
	}
}

func TestStructureFirstProducesValidBuckets(t *testing.T) {
	src := rng.New(9)
	x := src.UniformVec(64, 0, 100)
	for _, b := range []int{1, 2, 5, 16} {
		res, err := StructureFirst(x, StructureFirstOptions{Buckets: b, MaxCount: 100}, 1, src)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Boundaries) != b {
			t.Fatalf("got %d boundaries want %d", len(res.Boundaries), b)
		}
		if err := validBoundaries(len(x), res.Boundaries); err != nil {
			t.Fatal(err)
		}
		if len(res.Estimate) != len(x) {
			t.Fatal("estimate length mismatch")
		}
		for _, v := range res.Estimate {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("estimate not finite")
			}
		}
	}
}

func TestStructureFirstFindsBlockStructureAtHighEps(t *testing.T) {
	// With a large privacy budget the exponential mechanism concentrates
	// on the true v-optimal boundaries of strongly blocky data.
	x := make([]float64, 32)
	for i := range x {
		if i < 16 {
			x[i] = 1000
		}
	}
	src := rng.New(11)
	res, err := StructureFirst(x, StructureFirstOptions{Buckets: 2, MaxCount: 1000}, 1e6, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Boundaries[1] != 16 {
		t.Fatalf("boundary %v want [0 16]", res.Boundaries)
	}
	// Estimates are near-exact at huge ε.
	if math.Abs(res.Estimate[0]-1000) > 1 || math.Abs(res.Estimate[31]) > 1 {
		t.Fatalf("estimates %g, %g", res.Estimate[0], res.Estimate[31])
	}
}

func TestStructureFirstSingleBucket(t *testing.T) {
	// B = 1 needs no exponential mechanism and publishes the global mean.
	x := []float64{10, 20, 30, 40}
	src := rng.New(3)
	res, err := StructureFirst(x, StructureFirstOptions{Buckets: 1, MaxCount: 100}, 1e6, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Estimate {
		if math.Abs(v-25) > 0.5 {
			t.Fatalf("global mean estimate %g want ≈25", v)
		}
	}
}
