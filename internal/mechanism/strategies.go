package mechanism

import (
	"fmt"

	"lrm/internal/mat"
)

// This file builds the explicit strategy matrices behind the fast WM and
// HM implementations. They are used by tests to prove the O(n log n)
// transform paths agree with the generic strategy template, and are
// exported for users who want to compose or inspect strategies directly.

// HaarStrategy returns the weighted Haar strategy matrix over a domain of
// size n (padded internally to a power of two; columns beyond n are
// dropped). Rows are scaled so that uniform Laplace noise on A·x followed
// by least squares reproduces exactly Privelet's per-level noise
// calibration: the first row is all ones (the base coefficient times n)
// and each internal tree node contributes a +1/−1 split row. The matrix
// has max column L1 norm 1+log₂(padded n).
func HaarStrategy(n int) (*mat.Dense, error) {
	if n < 1 {
		return nil, fmt.Errorf("mechanism: HaarStrategy domain %d < 1", n)
	}
	padded := 1
	for padded < n {
		padded *= 2
	}
	rows := padded // 1 base row + (padded−1) internal nodes
	a := mat.New(rows, n)
	for j := 0; j < n; j++ {
		a.Set(0, j, 1)
	}
	// Internal nodes in heap order: node i covers a contiguous block.
	row := 1
	for i := 1; i < padded; i++ {
		size := padded / sizeIndex(i)
		start := (i - sizeIndex(i)) * size
		half := size / 2
		for j := start; j < start+half && j < n; j++ {
			a.Set(row, j, 1)
		}
		for j := start + half; j < start+size && j < n; j++ {
			a.Set(row, j, -1)
		}
		row++
	}
	return a, nil
}

// TreeStrategy returns the explicit b-ary hierarchical strategy matrix
// over a domain of size n: one 0/1 indicator row per tree node (root
// included, domain padded to a power of b with the padding columns
// dropped). Uniform Laplace noise on A·x followed by least squares is
// exactly the Boost mechanism with Hay et al.'s consistency step.
func TreeStrategy(n, b int) (*mat.Dense, error) {
	if n < 1 {
		return nil, fmt.Errorf("mechanism: TreeStrategy domain %d < 1", n)
	}
	if b < 2 {
		return nil, fmt.Errorf("mechanism: TreeStrategy branch %d < 2", b)
	}
	padded, levels := 1, 1
	for padded < n {
		padded *= b
		levels++
	}
	total := 0
	for lev := 0; lev < levels; lev++ {
		total += pow(b, lev)
	}
	a := mat.New(total, n)
	row := 0
	for lev := 0; lev < levels; lev++ {
		nodes := pow(b, lev)
		span := padded / nodes
		for i := 0; i < nodes; i++ {
			for j := i * span; j < (i+1)*span && j < n; j++ {
				a.Set(row, j, 1)
			}
			row++
		}
	}
	return a, nil
}
