package plan

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"lrm/internal/core"
	"lrm/internal/mat"
	"lrm/internal/mechanism"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// fastLRM keeps the ALM cheap so planner tests exercise the decision
// machinery, not the optimizer.
func fastLRM() core.Options {
	return core.Options{MaxOuterIter: 8, MaxInnerIter: 2, MaxNesterovIter: 8}
}

// TestPlanLowRankChoosesLRM pins the paper's Section 4 regime: a
// genuinely low-rank workload (WRelated, rank ≪ min(m,n)) must plan the
// Low-Rank Mechanism, and its score must beat both baselines.
func TestPlanLowRankChoosesLRM(t *testing.T) {
	w := workload.Related(48, 64, 4, rng.New(7))
	p, err := New(w, Options{LRM: fastLRM()})
	if err != nil {
		t.Fatal(err)
	}
	if p.Mechanism != "lrm" {
		t.Fatalf("low-rank workload planned %q, want lrm\n%s", p.Mechanism, p.Explain())
	}
	if !p.Stats.LowRank() || p.Stats.Rank != 4 {
		t.Fatalf("analysis missed the low-rank regime: %+v", p.Stats)
	}
	for _, c := range p.Candidates {
		if c.Name != "lrm" && c.Source != SourceSkipped && c.SSE <= p.SSE {
			t.Fatalf("winner SSE %g does not beat %s SSE %g", p.SSE, c.Name, c.SSE)
		}
	}
	if p.Prepared() == nil {
		t.Fatal("plan retains no prepared winner")
	}
	if got := p.LRMOptions.Rank; got != 5 { // ⌈1.2·4⌉
		t.Fatalf("tuned rank %d, want 5", got)
	}
	if p.Stats.SVD != nil {
		t.Fatal("plan retains the analysis SVD past preparation (would pin O((m+n)·min(m,n)) floats per cached plan)")
	}
}

// TestPlanFullRankFollowsSection32 pins the full-rank decision: LRM is
// skipped (Section 4's regime gate) and the winner is whichever baseline
// the Section 3.2 comparison m·Δ'² vs ΣW² names.
func TestPlanFullRankFollowsSection32(t *testing.T) {
	cases := []struct {
		name string
		w    *workload.Workload
		want string
	}{
		// Dense ±1 coefficients: Δ' ≈ m, so m·Δ'² ≈ m³ ≫ ΣW² = m·n —
		// high sensitivity, noise-on-data wins.
		{"discrete-lm", workload.Discrete(24, 32, 0.5, rng.New(3)), "lm"},
		// Two-way marginals: Δ' = 2 only, m·Δ'² = 4(d1+d2) < ΣW² = 2·d1·d2
		// — noise-on-results wins.
		{"marginal-nor", workload.Marginal(8, 8), "nor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := New(tc.w, Options{LRM: fastLRM()})
			if err != nil {
				t.Fatal(err)
			}
			if p.Stats.LowRank() {
				t.Fatalf("test premise broken: workload is low-rank (%+v)", p.Stats)
			}
			var lrmC *Candidate
			for i := range p.Candidates {
				if p.Candidates[i].Name == "lrm" {
					lrmC = &p.Candidates[i]
				}
			}
			if lrmC == nil || lrmC.Source != SourceSkipped {
				t.Fatalf("lrm not skipped on a full-rank workload: %+v", p.Candidates)
			}
			if p.Mechanism != tc.want {
				t.Fatalf("planned %q, want %q\n%s", p.Mechanism, tc.want, p.Explain())
			}
			// The winner must agree with the analysis's own 3.2 verdict.
			rule := map[string]string{"noise-on-data": "lm", "noise-on-results": "nor"}[p.Stats.BetterBaseline()]
			if p.Mechanism != rule {
				t.Fatalf("winner %q disagrees with BetterBaseline() = %q", p.Mechanism, p.Stats.BetterBaseline())
			}
		})
	}
}

// TestAutoPrepareOneFactorization pins the tentpole contract: planning +
// preparing the winner performs exactly ONE factorization of W — the
// analysis SVD is reused by the LRM's PrepareAnalyzed, never recomputed.
func TestAutoPrepareOneFactorization(t *testing.T) {
	w := workload.Related(40, 56, 3, rng.New(11))
	before := mat.SVDCalls()
	p, pl, err := AutoPrepare(w, Options{LRM: fastLRM()})
	if err != nil {
		t.Fatal(err)
	}
	if got := mat.SVDCalls() - before; got != 1 {
		t.Fatalf("AutoPrepare ran %d factorizations, want exactly 1", got)
	}
	if pl.Mechanism != "lrm" {
		t.Fatalf("planned %q, want lrm", pl.Mechanism)
	}
	x := rng.New(12).UniformVec(w.Domain(), 0, 50)
	out, err := p.Answer(x, 0.5, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != w.Queries() {
		t.Fatalf("answer length %d, want %d", len(out), w.Queries())
	}
}

// TestPlanProbeFallback: a candidate without an analytic SSE (hm) must be
// scored by the empirical probe, finitely and reproducibly.
func TestPlanProbeFallback(t *testing.T) {
	w := workload.Range(24, 32, rng.New(5))
	opts := Options{Mechanisms: []string{"lm", "hm"}, ProbeTrials: 8}
	p, err := New(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	var hm *Candidate
	for i := range p.Candidates {
		if p.Candidates[i].Name == "hm" {
			hm = &p.Candidates[i]
		}
	}
	if hm == nil || hm.Source != SourceProbe {
		t.Fatalf("hm not probe-scored: %+v", p.Candidates)
	}
	if math.IsNaN(hm.SSE) || math.IsInf(hm.SSE, 0) || hm.SSE <= 0 {
		t.Fatalf("probe SSE %v not a positive finite number", hm.SSE)
	}
	p2, err := New(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.Digest() != p2.Digest() {
		t.Fatalf("replanning changed the digest: %s vs %s", p.Digest(), p2.Digest())
	}
}

// TestPlanUnknownCandidate: a typo in the candidate list must fail the
// plan, naming the registry — and before paying for the analysis SVD.
func TestPlanUnknownCandidate(t *testing.T) {
	w := workload.Identity(8)
	before := mat.SVDCalls()
	_, err := New(w, Options{Mechanisms: []string{"lm", "nope"}})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown candidate not rejected: %v", err)
	}
	if got := mat.SVDCalls() - before; got != 0 {
		t.Fatalf("invalid candidate list still ran %d factorizations", got)
	}
}

// TestPlanBadEpsilonBeforeAnalysis: an invalid scoring budget fails
// before the factorization, not after.
func TestPlanBadEpsilonBeforeAnalysis(t *testing.T) {
	w := workload.Identity(8)
	before := mat.SVDCalls()
	if _, err := New(w, Options{Eps: -1}); err == nil || !strings.Contains(err.Error(), "epsilon") {
		t.Fatalf("invalid eps accepted: %v", err)
	}
	if got := mat.SVDCalls() - before; got != 0 {
		t.Fatalf("invalid eps still ran %d factorizations", got)
	}
}

// TestPlanAllSkipped: lrm alone on a full-rank workload leaves nothing to
// score; the error must say why.
func TestPlanAllSkipped(t *testing.T) {
	_, err := New(workload.Identity(8), Options{Mechanisms: []string{"lrm"}})
	if err == nil || !strings.Contains(err.Error(), "full-rank") {
		t.Fatalf("want full-rank skip explanation, got: %v", err)
	}
}

// TestPlanShardsRecorded: the shard decision mirrors the engine's
// ShardRows rule and lands in the digest.
func TestPlanShardsRecorded(t *testing.T) {
	w := workload.Range(20, 16, rng.New(9))
	p, err := New(w, Options{Mechanisms: []string{"lm"}, ShardRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards != 3 { // ⌈20/8⌉
		t.Fatalf("shards %d, want 3", p.Shards)
	}
	flat, err := New(w, Options{Mechanisms: []string{"lm"}})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Shards != 1 || flat.Digest() == p.Digest() {
		t.Fatalf("shard decision not reflected in digest (%s vs %s)", flat.Digest(), p.Digest())
	}
}

// TestPlanExplain spot-checks the human-readable report.
func TestPlanExplain(t *testing.T) {
	w := workload.Related(30, 40, 3, rng.New(2))
	p, err := New(w, Options{LRM: fastLRM(), Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	e := p.Explain()
	for _, want := range []string{"chosen", "lrm", "candidates at ε=0.5", "decision:", "rank 3"} {
		if !strings.Contains(e, want) {
			t.Fatalf("Explain missing %q:\n%s", want, e)
		}
	}
}

// TestPlanRoundTrip: Encode → Decode preserves the decision and the
// digest; tampering is rejected.
func TestPlanRoundTrip(t *testing.T) {
	w := workload.Related(24, 32, 3, rng.New(4))
	p, err := New(w, Options{LRM: fastLRM(), ShardRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Mechanism != p.Mechanism || got.Digest() != p.Digest() ||
		got.Shards != p.Shards || got.LRMOptions != p.LRMOptions ||
		got.Fingerprint != p.Fingerprint {
		t.Fatalf("round trip changed the plan:\n%+v\nvs\n%+v", got, p)
	}
	if got.Prepared() != nil {
		t.Fatal("decoded plan must not claim a prepared mechanism")
	}
	tampered := strings.Replace(buf.String(), `"mechanism": "lrm"`, `"mechanism": "lm"`, 1)
	if tampered == buf.String() {
		t.Fatal("tamper substitution missed")
	}
	if _, err := Decode(strings.NewReader(tampered)); err == nil {
		t.Fatal("tampered document accepted")
	}
	// The analysis summary is covered by the digest too: a hand-edited
	// stats block must not survive as the decision's justification.
	tamperedStats := strings.Replace(buf.String(), `"rank": 3`, `"rank": 2`, 1)
	if tamperedStats == buf.String() {
		t.Fatal("stats tamper substitution missed")
	}
	if _, err := Decode(strings.NewReader(tamperedStats)); err == nil {
		t.Fatal("tampered stats block accepted")
	}
}

// TestPrepareWithReusesAnalysis pins the mechanism-layer contract the
// planner relies on: after one Analyze, PrepareWith on the LRM runs no
// further factorization, and the result answers identically-shaped
// releases.
func TestPrepareWithReusesAnalysis(t *testing.T) {
	w := workload.Related(20, 28, 3, rng.New(6))
	stats, err := workload.Analyze(w)
	if err != nil {
		t.Fatal(err)
	}
	before := mat.SVDCalls()
	p, err := mechanism.PrepareWith(mechanism.LRM{Options: fastLRM()}, w, stats)
	if err != nil {
		t.Fatal(err)
	}
	if got := mat.SVDCalls() - before; got != 0 {
		t.Fatalf("PrepareAnalyzed ran %d factorizations, want 0", got)
	}
	out, err := p.Answer(rng.New(1).UniformVec(w.Domain(), 0, 10), 1, rng.New(2))
	if err != nil || len(out) != w.Queries() {
		t.Fatalf("answer %v (err %v)", out, err)
	}
}
