package mat

import (
	"fmt"
	"testing"
)

// TestKernelFamilyBitEquality pins the cross-family contract that makes
// measured dispatch safe: on AVX-512 hardware the AVX2 and AVX-512
// families must produce bit-identical products on the fused path (both
// are one IEEE FMA chain per element, with the same FMA/scalar row
// partition because the 8-row tier falls back to the 4-row kernel for
// short ranges), and every family — scalar included — must agree on the
// column-exact path. Skips where only one family exists; CI's AVX-512
// runners exercise it for real.
func TestKernelFamilyBitEquality(t *testing.T) {
	if !gemmUseAsm || !gemmUseAVX512 {
		t.Skip("needs two asm kernel families (AVX2 and AVX-512) on this host")
	}
	saved := gemmFamilySnapshot()
	defer saved.restore()

	for _, sh := range gemmShapes {
		a := randDenseSeed(t, sh.m, sh.k, int64(19*sh.m+sh.k))
		b := randDenseSeed(t, sh.k, sh.n, int64(23*sh.n+sh.k))
		name := fmt.Sprintf("%dx%dx%d", sh.m, sh.k, sh.n)

		if err := SetKernelFamily("", "avx512"); err != nil {
			t.Fatal(err)
		}
		fused512 := MulTo(New(sh.m, sh.n), a, b)
		exact512 := MulColsTo(New(sh.m, sh.n), a, b)

		if err := SetKernelFamily("", "avx2"); err != nil {
			t.Fatal(err)
		}
		fused2 := MulTo(New(sh.m, sh.n), a, b)
		exact2 := MulColsTo(New(sh.m, sh.n), a, b)

		if !fused512.Equal(fused2) {
			t.Fatalf("%s: fused product differs bitwise between avx512 and avx2 families", name)
		}
		if !exact512.Equal(exact2) {
			t.Fatalf("%s: column-exact product differs bitwise between avx512 and avx2 families", name)
		}

		// Column-exact also matches the scalar kernels: dot-product
		// rounding is the one true order on that path.
		gemmUseAsm = false
		exactScalar := MulColsTo(New(sh.m, sh.n), a, b)
		gemmUseAsm = true
		if !exact512.Equal(exactScalar) {
			t.Fatalf("%s: column-exact product differs bitwise between asm and scalar kernels", name)
		}
	}
}

// TestKernelDispatchAPI covers the exported dispatch surface: the class
// grid, family validation, per-class installs, and the dispatch snapshot.
func TestKernelDispatchAPI(t *testing.T) {
	saved := gemmFamilySnapshot()
	defer saved.restore()

	if err := SetKernelFamily("", "no-such-family"); err == nil {
		t.Error("unknown family accepted")
	}
	if err := SetKernelFamily("no-such-class", KernelTier()); err == nil {
		t.Error("unknown class accepted")
	}
	if !gemmUseAsm {
		if got := KernelFamilyFor(64, 64, 64); got != "scalar" {
			t.Fatalf("no-asm host dispatches %q, want scalar", got)
		}
		return
	}
	classes := KernelClasses()
	if len(classes) != gemmNumClasses {
		t.Fatalf("KernelClasses returned %d names, want %d", len(classes), gemmNumClasses)
	}
	fams := KernelFamilies()
	if len(fams) == 0 {
		t.Fatal("no selectable families on an asm host")
	}
	for _, fam := range fams {
		if fam == "scalar" {
			t.Fatal("scalar listed as selectable alongside asm families")
		}
	}
	// Installing the narrowest family for one class must show up in the
	// snapshot for that class only.
	narrowest := fams[len(fams)-1]
	if err := SetKernelFamily("", fams[0]); err != nil {
		t.Fatal(err)
	}
	if err := SetKernelFamily("deep-narrow", narrowest); err != nil {
		t.Fatal(err)
	}
	table := KernelDispatch()
	if table["deep-narrow"] != narrowest {
		t.Fatalf("deep-narrow dispatches %q after installing %q", table["deep-narrow"], narrowest)
	}
	if got := KernelFamilyFor(48, 1, 512); got != narrowest {
		t.Fatalf("KernelFamilyFor(48,1,512) = %q, want %q", got, narrowest)
	}
	if KernelClassFor(48, 1, 512) != "deep-narrow" {
		t.Fatalf("KernelClassFor(48,1,512) = %q, want deep-narrow", KernelClassFor(48, 1, 512))
	}
}

// gemmFamilySnapshot captures the dispatch table and kernel gates so
// tests that mutate them restore the host defaults.
type familySnapshot struct {
	table  [gemmNumClasses]int32
	asm    bool
	avx512 bool
}

func gemmFamilySnapshot() familySnapshot {
	var s familySnapshot
	for i := range gemmDispatch {
		s.table[i] = gemmDispatch[i].Load()
	}
	s.asm, s.avx512 = gemmUseAsm, gemmUseAVX512
	return s
}

func (s familySnapshot) restore() {
	for i := range gemmDispatch {
		gemmDispatch[i].Store(s.table[i])
	}
	gemmUseAsm, gemmUseAVX512 = s.asm, s.avx512
}
