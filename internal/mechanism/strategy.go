package mechanism

import (
	"fmt"

	"lrm/internal/mat"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// StrategyPrepared answers a workload through an explicit strategy matrix
// A: release ŷ = A·x + Lap(Δ_A/ε), estimate x̂ = A⁺·ŷ by least squares,
// and answer W·x̂. This is the matrix-mechanism template that WM, HM and
// MM all instantiate (the specialized implementations below use O(n log n)
// transforms instead of the dense pseudo-inverse, but agree with this
// form — tests verify that).
type StrategyPrepared struct {
	w     *workload.Workload
	a     *mat.Dense
	apinv *mat.Dense
	delta float64
}

// NewStrategyPrepared builds the generic strategy mechanism for workload
// w with strategy a.
func NewStrategyPrepared(w *workload.Workload, a *mat.Dense) (*StrategyPrepared, error) {
	if a.Cols() != w.Domain() {
		return nil, fmt.Errorf("mechanism: strategy has %d columns, workload domain is %d", a.Cols(), w.Domain())
	}
	delta := privacy.Sensitivity(a)
	if delta == 0 {
		return nil, fmt.Errorf("mechanism: zero strategy matrix")
	}
	return &StrategyPrepared{w: w, a: a, apinv: mat.PseudoInverse(a), delta: delta}, nil
}

// Strategy returns the strategy matrix.
func (p *StrategyPrepared) Strategy() *mat.Dense { return p.a }

// Answer implements Prepared.
func (p *StrategyPrepared) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if len(x) != p.w.Domain() {
		return nil, fmt.Errorf("mechanism: data length %d != domain %d", len(x), p.w.Domain())
	}
	noisy, err := privacy.LaplaceMechanism(mat.MulVec(p.a, x), p.delta, eps, src)
	if err != nil {
		return nil, err
	}
	xhat := mat.MulVec(p.apinv, noisy)
	return p.w.Answer(xhat), nil
}

// AnswerMany implements BatchAnswerer: the three dense products of the
// strategy template (A·X, A⁺·Ỹ, W·X̂) each run as one packed multi-RHS
// GEMM over the whole batch instead of B mat-vecs, with the per-column
// noise drawn in ascending column order. Since WM, HM and MM all
// instantiate this template (or agree with it), they batch for free.
func (p *StrategyPrepared) AnswerMany(x *mat.Dense, eps privacy.Epsilon, src *rng.Source) (*mat.Dense, error) {
	if err := checkBatchShape(x, p.w.Domain()); err != nil {
		return nil, err
	}
	cols := x.Cols()
	noisy := mat.MulColsTo(mat.New(p.a.Rows(), cols), p.a, x)
	if err := addLaplaceNoiseCols(noisy, p.delta, eps, src); err != nil {
		return nil, err
	}
	xhat := mat.MulColsTo(mat.New(p.apinv.Rows(), cols), p.apinv, noisy)
	return mat.MulColsTo(mat.New(p.w.Queries(), cols), p.w.W, xhat), nil
}

// ExpectedSSE implements Prepared: the error is W·A⁺·noise, so the SSE is
// 2·(Δ_A/ε)²·‖W·A⁺‖_F².
func (p *StrategyPrepared) ExpectedSSE(eps privacy.Epsilon) float64 {
	wap := mat.Mul(p.w.W, p.apinv)
	s := p.delta / float64(eps)
	return 2 * s * s * mat.SquaredSum(wap)
}
