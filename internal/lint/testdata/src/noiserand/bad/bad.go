// Package bad holds noiserand want-diagnostic fixtures: a math/rand
// import, constant-seeded sources, and a baked-in Seed field.
package bad

import (
	"math/rand" // want `import of math/rand outside internal/rng`

	"lrm/internal/rng"
)

func replayable() *rng.Source {
	return rng.New(42) // want `constant seed 42`
}

func reseed(s *rng.Source) {
	s.Reseed(7) // want `constant seed 7`
}

type options struct {
	Seed int64
}

func configured() options {
	return options{Seed: 9} // want `constant Seed: 9`
}

func shuffle(n int) int {
	return rand.Intn(n)
}
