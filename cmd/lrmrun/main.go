// Command lrmrun answers a batch of linear queries over a histogram under
// ε-differential privacy with a chosen mechanism.
//
// Usage:
//
//	lrmrun -data counts.csv -workload queries.csv -mech lrm -eps 0.5
//	lrmrun -data counts.csv -workload queries.csv -mech auto    # plan, then answer
//	lrmrun -data counts.csv -workload queries.csv -plan         # explain the plan, answer nothing
//
// counts.csv has rows "index,count" (a header line is allowed).
// queries.csv has one query per line: n comma-separated coefficients.
// The noisy answers are printed one per line.
//
// -mech auto scores the candidate mechanisms on the workload's analysis
// (rank, sensitivity, the paper's Section 3.2/4 regime rules) and
// answers with the winner, logging the decision to stderr; -plan prints
// the full scoring justification instead of answering.
package main

import (
	"flag"
	"fmt"
	"os"

	"lrm/internal/dataset"
	"lrm/internal/mechanism"
	"lrm/internal/plan"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

func main() {
	var (
		dataPath = flag.String("data", "", "histogram CSV (index,count)")
		wlPath   = flag.String("workload", "", "workload CSV: one query per row, n coefficients")
		mechName = flag.String("mech", "lrm", "mechanism: lrm, lm, nor, wm, hm, mm, fpa, cm, nf, sf — or 'auto' to let the planner choose")
		eps      = flag.Float64("eps", 1.0, "privacy budget epsilon")
		seed     = flag.Int64("seed", 0, "noise seed (0 = default stream)")
		exact    = flag.Bool("exact", false, "also print the exact answers (for debugging; not private!)")
		project  = flag.Bool("project", false, "post-process: project answers onto the workload's column space")
		coeffs   = flag.Int("coeffs", 0, "fpa: retained Fourier coefficients / cm: measurements / nf, sf: buckets (0 = mechanism default)")
		inspect  = flag.Bool("inspect", false, "print workload diagnostics (rank, sensitivity, baseline comparison) and exit")
		planOnly = flag.Bool("plan", false, "print the mechanism plan (candidate scores and decision) and exit without answering")
	)
	flag.Parse()
	if *dataPath == "" || *wlPath == "" {
		fatalf("both -data and -workload are required")
	}

	df, err := os.Open(*dataPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer df.Close()
	ds, err := dataset.ReadCSV("input", df)
	if err != nil {
		fatalf("reading data: %v", err)
	}

	w, err := readWorkload(*wlPath, ds.Len())
	if err != nil {
		fatalf("reading workload: %v", err)
	}

	if *inspect {
		stats, err := workload.Analyze(w)
		if err != nil {
			fatalf("analyzing workload: %v", err)
		}
		fmt.Print(stats.Describe())
		return
	}
	planOpts := plan.Options{
		Eps:    privacy.Epsilon(*eps),
		Config: mechanism.Config{Coeffs: *coeffs, Seed: *seed},
	}
	if *planOnly {
		p, err := plan.New(w, planOpts)
		if err != nil {
			fatalf("planning: %v", err)
		}
		fmt.Print(p.Explain())
		return
	}

	var prepared mechanism.Prepared
	if *mechName == "auto" {
		if *project {
			fatalf("-project composes a fixed mechanism; it is not supported with -mech auto")
		}
		var p *plan.Plan
		var err error
		prepared, p, err = plan.AutoPrepare(w, planOpts)
		if err != nil {
			fatalf("planning: %v", err)
		}
		fmt.Fprintf(os.Stderr, "lrmrun: planned %s\n", p.Summary())
	} else {
		mech, err := mechanism.ByName(*mechName, mechanism.Config{Coeffs: *coeffs, Seed: *seed})
		if err != nil {
			fatalf("%v", err)
		}
		if *project {
			mech = mechanism.Consistent{Base: mech}
		}
		if prepared, err = mech.Prepare(w); err != nil {
			fatalf("preparing %s: %v", mech.Name(), err)
		}
	}
	relEps := privacy.Epsilon(*eps)
	if err := relEps.Validate(); err != nil {
		fatalf("invalid -eps: %v", err)
	}
	answers, err := prepared.Answer(ds.Counts, relEps, rng.New(*seed))
	if err != nil {
		fatalf("answering: %v", err)
	}
	exactAnswers := w.Answer(ds.Counts)
	for i, a := range answers {
		if *exact {
			fmt.Printf("%g,%g\n", a, exactAnswers[i])
		} else {
			fmt.Printf("%g\n", a)
		}
	}
}

func readWorkload(path string, n int) (*workload.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	w, err := workload.ReadCSV("cli", f)
	if err != nil {
		return nil, err
	}
	if w.Domain() != n {
		return nil, fmt.Errorf("workload has %d coefficients per query, data has %d counts", w.Domain(), n)
	}
	return w, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lrmrun: "+format+"\n", args...)
	os.Exit(1)
}
