package mechanism

import (
	"fmt"
	"math"

	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/transform"
	"lrm/internal/workload"
)

// Fourier is the Fourier Perturbation Algorithm (FPA_k) of Rastogi and
// Nath (SIGMOD 2010), the transform-synopsis baseline the paper's related
// work cites as [24]. The histogram is transformed with the unitary DFT,
// only the first K coefficients are retained and perturbed, and the noisy
// spectrum is inverted to a synthetic histogram that answers the whole
// workload.
//
// Privacy: a unit change in one count changes the full unitary spectrum
// by an L2-norm-1 vector, so the 2K real numbers released (real and
// imaginary parts of the K retained coefficients) change by at most
// √(2K) in L1. Laplace noise with scale √(2K)/ε on each part therefore
// gives ε-differential privacy; everything after the release (mirroring,
// inversion, answering) is post-processing.
//
// Utility: the retained-coefficient count trades noise (grows like K) for
// bias (the dropped tail energy). FPA shines on smooth, periodic
// histograms; on adversarial data the bias term is unbounded, which is
// why it has no analytic expected SSE here.
type Fourier struct {
	// K is the number of retained low-frequency coefficients. Zero picks
	// the default n/8 (at least 1, at most n).
	K int
}

// Name implements Mechanism.
func (Fourier) Name() string { return "FPA" }

// Prepare implements Mechanism.
func (f Fourier) Prepare(w *workload.Workload) (Prepared, error) {
	if w == nil || w.W == nil {
		return nil, fmt.Errorf("mechanism: nil workload")
	}
	n := w.Domain()
	k := f.K
	if k == 0 {
		k = n / 8
		if k < 1 {
			k = 1
		}
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("mechanism: Fourier K=%d out of range [1,%d]", k, n)
	}
	return &fourierPrepared{w: w, n: n, k: k}, nil
}

type fourierPrepared struct {
	w *workload.Workload
	n int
	k int
}

// Answer implements Prepared.
//
//lrm:sanitizer — the retained Fourier coefficients are Laplace-perturbed
func (p *fourierPrepared) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if len(x) != p.n {
		return nil, fmt.Errorf("mechanism: data length %d != domain %d", len(x), p.n)
	}
	spec := transform.FFTReal(x)
	lam := math.Sqrt(2*float64(p.k)) / float64(eps)
	noisy := make([]complex128, p.n)
	for j := 0; j < p.k; j++ {
		noisy[j] = spec[j] + complex(src.Laplace(lam), src.Laplace(lam))
	}
	// Post-processing: enforce the conjugate symmetry of a real signal so
	// the inverse transform is real. Index 0 (and n/2 for even n) must be
	// real; indices j and n−j mirror.
	noisy[0] = complex(real(noisy[0]), 0)
	for j := 1; j < p.k; j++ {
		m := p.n - j
		if m == j {
			noisy[j] = complex(real(noisy[j]), 0)
			continue
		}
		if m >= p.k { // mirror slot was dropped: fill it
			noisy[m] = complex(real(noisy[j]), -imag(noisy[j]))
		}
	}
	xhat := transform.IFFTReal(noisy)
	return p.w.Answer(xhat), nil
}

// ExpectedSSE implements Prepared. FPA's error includes a data-dependent
// bias (the dropped spectral tail), so there is no data-independent
// closed form.
func (p *fourierPrepared) ExpectedSSE(eps privacy.Epsilon) float64 {
	return NoAnalyticSSE()
}

// ReconstructionBias returns the squared L2 norm of the spectral tail of
// x that FPA_k drops — the bias part of its error, useful for choosing K
// offline on public or synthetic data (choosing K on the private data
// would itself cost privacy budget).
func (p *fourierPrepared) ReconstructionBias(x []float64) (float64, error) {
	if len(x) != p.n {
		return 0, fmt.Errorf("mechanism: data length %d != domain %d", len(x), p.n)
	}
	spec := transform.FFTReal(x)
	var tail float64
	for j := p.k; j < p.n; j++ {
		m := p.n - j
		if m >= 1 && m < p.k && m != j {
			// This slot is regenerated from its retained mirror; its tail
			// energy is not lost.
			continue
		}
		re, im := real(spec[j]), imag(spec[j])
		tail += re*re + im*im
	}
	return tail, nil
}
