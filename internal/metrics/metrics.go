// Package metrics measures mechanism accuracy the way the paper's
// Section 6 does: the Average Squared Error of a query batch is the sum of
// squared differences between exact and noisy answers, averaged over
// repeated randomized runs (the paper averages 20 executions).
package metrics

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"lrm/internal/mechanism"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// SquaredError returns Σⱼ (noisy[j] − exact[j])².
func SquaredError(exact, noisy []float64) float64 {
	if len(exact) != len(noisy) {
		panic(fmt.Sprintf("metrics: length mismatch %d vs %d", len(exact), len(noisy)))
	}
	var s float64
	for j, e := range exact {
		d := noisy[j] - e
		s += d * d
	}
	return s
}

// Measurement is the outcome of evaluating one prepared mechanism.
type Measurement struct {
	// AvgSquaredError is the squared error averaged over trials.
	AvgSquaredError float64
	// PrepareSeconds is the one-off setup cost (strategy optimization).
	PrepareSeconds float64
	// AnswerSeconds is the total time spent answering all trials.
	AnswerSeconds float64
	// Trials is the number of randomized executions averaged.
	Trials int
}

// Evaluate prepares mech for w (timed) and measures its average squared
// error on x over the given number of trials, run in parallel with
// independent sub-streams of src.
func Evaluate(mech mechanism.Mechanism, w *workload.Workload, x []float64, eps privacy.Epsilon, trials int, src *rng.Source) (Measurement, error) {
	if trials < 1 {
		return Measurement{}, fmt.Errorf("metrics: trials must be >= 1, got %d", trials)
	}
	start := time.Now()
	prepared, err := mech.Prepare(w)
	if err != nil {
		return Measurement{}, fmt.Errorf("metrics: preparing %s: %w", mech.Name(), err)
	}
	prepSec := time.Since(start).Seconds()

	m, err := EvaluatePrepared(prepared, w, x, eps, trials, src)
	if err != nil {
		return Measurement{}, err
	}
	m.PrepareSeconds = prepSec
	return m, nil
}

// EvaluatePrepared measures an already-prepared mechanism.
func EvaluatePrepared(p mechanism.Prepared, w *workload.Workload, x []float64, eps privacy.Epsilon, trials int, src *rng.Source) (Measurement, error) {
	if err := eps.Validate(); err != nil {
		return Measurement{}, err
	}
	exact := w.Answer(x)
	sources := make([]*rng.Source, trials)
	for i := range sources {
		sources[i] = src.Split()
	}
	errs := make([]error, trials)
	sses := make([]float64, trials)

	start := time.Now()
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < trials; i++ {
			next <- i
		}
		close(next)
	}()
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				noisy, err := p.Answer(x, eps, sources[i])
				if err != nil {
					errs[i] = err
					continue
				}
				sses[i] = SquaredError(exact, noisy)
			}
		}()
	}
	wg.Wait()
	ansSec := time.Since(start).Seconds()

	var total float64
	for i := 0; i < trials; i++ {
		if errs[i] != nil {
			return Measurement{}, fmt.Errorf("metrics: trial %d: %w", i, errs[i])
		}
		total += sses[i]
	}
	return Measurement{
		AvgSquaredError: total / float64(trials),
		AnswerSeconds:   ansSec,
		Trials:          trials,
	}, nil
}
