// AVX2+FMA micro-kernel for the packed GEMM layer (gemm.go). Selected at
// runtime via CPUID (see gemm_amd64.go); the build stays at the GOAMD64=v1
// baseline so the binary still runs on machines without AVX2, where the
// scalar kernels in gemm.go take over.

//go:build amd64 && !noasm

#include "textflag.h"

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemmKernel4x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64)
//
// Computes the 4×8 output block
//
//	C[i][j] = Σ_{t=0..k-1} A(i,t) · B(t,j)   for i in 0..3, j in 0..7
//
// overwriting C. A is addressed through two byte strides so one kernel
// serves both operand orientations: element A(i,t) lives at
// a + i·aRowStride + t·aKStride (aKStride=8 walks a row-major row;
// aRowStride=8 with aKStride=lda·8 walks a column, i.e. a transposed
// view). B is a panel whose 8 consecutive values for step t live at
// bp + t·bKStride (bKStride=64 for a packed panel). C rows are
// cRowStride bytes apart.
//
// Each C element is one FMA accumulation chain in ascending t — a single
// rounding per step, the fixed summation order the bit-identical
// serial/parallel guarantee rests on.
TEXT ·gemmKernel4x8(SB), NOSPLIT, $0-64
	MOVQ k+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ aRowStride+16(FP), R8
	MOVQ aKStride+24(FP), R12
	MOVQ bp+32(FP), DX
	MOVQ bKStride+40(FP), R13
	MOVQ c+48(FP), DI
	MOVQ cRowStride+56(FP), R10

	LEAQ (R8)(R8*2), R9   // 3·aRowStride
	LEAQ (R10)(R10*2), R11 // 3·cRowStride

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	TESTQ CX, CX
	JZ    store

loop:
	VMOVUPD (DX), Y8               // B(t, 0:4)
	VMOVUPD 32(DX), Y9             // B(t, 4:8)
	VBROADCASTSD (SI), Y10         // A(0,t)
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD (SI)(R8*1), Y11   // A(1,t)
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD (SI)(R8*2), Y12   // A(2,t)
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VBROADCASTSD (SI)(R9*1), Y13   // A(3,t)
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7
	ADDQ R12, SI
	ADDQ R13, DX
	DECQ CX
	JNZ  loop

store:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, (DI)(R10*1)
	VMOVUPD Y3, 32(DI)(R10*1)
	VMOVUPD Y4, (DI)(R10*2)
	VMOVUPD Y5, 32(DI)(R10*2)
	VMOVUPD Y6, (DI)(R11*1)
	VMOVUPD Y7, 32(DI)(R11*1)
	VZEROUPPER
	RET

// func gemmKernelMulAdd4x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64)
//
// The column-exact sibling of gemmKernel4x8: identical addressing and
// tile shape, but each accumulation step is a separate VMULPD + VADDPD
// instead of a fused multiply-add — product rounded, then sum rounded,
// in ascending t. That is bit-for-bit the arithmetic of the scalar
// kernels and of a MulVecTo dot product, which is the whole point: the
// multi-RHS answering path (MulColsTo) must reproduce per-column
// mat-vec results exactly, and the FMA kernel's single rounding per step
// would not. Costs one extra µop per madd; still vectorized, packed and
// register-blocked like the FMA kernel.
TEXT ·gemmKernelMulAdd4x8(SB), NOSPLIT, $0-64
	MOVQ k+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ aRowStride+16(FP), R8
	MOVQ aKStride+24(FP), R12
	MOVQ bp+32(FP), DX
	MOVQ bKStride+40(FP), R13
	MOVQ c+48(FP), DI
	MOVQ cRowStride+56(FP), R10

	LEAQ (R8)(R8*2), R9   // 3·aRowStride
	LEAQ (R10)(R10*2), R11 // 3·cRowStride

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	TESTQ CX, CX
	JZ    storeMulAdd

loopMulAdd:
	VMOVUPD (DX), Y8               // B(t, 0:4)
	VMOVUPD 32(DX), Y9             // B(t, 4:8)
	VBROADCASTSD (SI), Y10         // A(0,t)
	VMULPD  Y8, Y10, Y11
	VADDPD  Y11, Y0, Y0
	VMULPD  Y9, Y10, Y12
	VADDPD  Y12, Y1, Y1
	VBROADCASTSD (SI)(R8*1), Y13   // A(1,t)
	VMULPD  Y8, Y13, Y14
	VADDPD  Y14, Y2, Y2
	VMULPD  Y9, Y13, Y15
	VADDPD  Y15, Y3, Y3
	VBROADCASTSD (SI)(R8*2), Y10   // A(2,t)
	VMULPD  Y8, Y10, Y11
	VADDPD  Y11, Y4, Y4
	VMULPD  Y9, Y10, Y12
	VADDPD  Y12, Y5, Y5
	VBROADCASTSD (SI)(R9*1), Y13   // A(3,t)
	VMULPD  Y8, Y13, Y14
	VADDPD  Y14, Y6, Y6
	VMULPD  Y9, Y13, Y15
	VADDPD  Y15, Y7, Y7
	ADDQ R12, SI
	ADDQ R13, DX
	DECQ CX
	JNZ  loopMulAdd

storeMulAdd:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, (DI)(R10*1)
	VMOVUPD Y3, 32(DI)(R10*1)
	VMOVUPD Y4, (DI)(R10*2)
	VMOVUPD Y5, 32(DI)(R10*2)
	VMOVUPD Y6, (DI)(R11*1)
	VMOVUPD Y7, 32(DI)(R11*1)
	VZEROUPPER
	RET
