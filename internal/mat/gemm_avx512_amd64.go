//go:build amd64 && !noasm && !noavx512

package mat

import "os"

// gemmKernel8x8 is the AVX-512 micro-kernel in gemm_avx512_amd64.s: an
// 8×8 output block held in eight ZMM accumulators, one fused
// multiply-add chain per element in ascending k — the same per-element
// arithmetic as gemmKernel4x8, so the two tiers agree bit for bit and
// the dispatcher may pick either. It must only be called when
// gemmUseAVX512 is true.
//
//go:noescape
func gemmKernel8x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64)

// gemmKernelMulAdd8x8 is the column-exact AVX-512 micro-kernel: same
// tile, separate multiply and add per step (VMULPD + VADDPD, no fusion),
// rounding exactly like the scalar kernels and MulVecTo dot products. It
// must only be called when gemmUseAVX512 is true.
//
//go:noescape
func gemmKernelMulAdd8x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64)

// detectAVX512 reports whether the CPU and OS support the AVX-512
// micro-kernels: AVX512F + AVX512DQ in CPUID leaf 7, and XMM/YMM plus
// opmask/ZMM state enabled in XCR0 (the OS must save the full 512-bit
// register file and mask registers across context switches). The base
// AVX2+FMA tier must also be present — the 8×8 kernel falls back to the
// 4×8 kernel for short row ranges.
func detectAVX512() bool {
	if !detectAVX2FMA() {
		return false
	}
	const (
		avx512f  = 1 << 16
		avx512dq = 1 << 17
	)
	_, b, _, _ := cpuidex(7, 0)
	if b&avx512f == 0 || b&avx512dq == 0 {
		return false
	}
	// XCR0: SSE|AVX (0x6) plus opmask|ZMM_Hi256|Hi16_ZMM (0xE0).
	lo, _ := xgetbv0()
	return lo&0xE6 == 0xE6
}

// gemmUseAVX512 gates the AVX-512 tier. Two kill switches beyond the
// hardware check: the noavx512 build tag compiles this file (and the
// kernels) out entirely, and the LRM_NOAVX512 environment variable
// disables the tier at startup without a rebuild — the operational
// escape hatch if a host's AVX-512 implementation downclocks badly. A
// variable (not a const) so tests can force the AVX2 tier and prove the
// two produce identical bits.
var gemmUseAVX512 = detectAVX512() && os.Getenv("LRM_NOAVX512") == ""
