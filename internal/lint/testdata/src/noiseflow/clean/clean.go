// Package clean holds noiseflow fixtures that must produce no
// diagnostics: every path from the raw histogram to a sink passes a
// verified sanitizer, and metadata reads of a source-bearing struct
// stay clean.
package clean

import "lrm/internal/rng"

type request struct {
	//lrm:source
	Counts []float64
	Eps    float64
}

// emit releases its argument to the outside world.
//
//lrm:sink
func emit(vals []float64) { _ = vals }

// noise returns a fresh ε-DP release of vals.
//
//lrm:sanitizer — every element carries Laplace noise of scale 1/eps
func noise(vals []float64, eps float64, src *rng.Source) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v + src.Laplace(1/eps)
	}
	return out
}

// noiseInPlace perturbs vals where they sit.
//
//lrm:sanitizer vals — Laplace draws are mixed into vals in place
func noiseInPlace(vals []float64, src *rng.Source) {
	for i := range vals {
		vals[i] += src.Laplace(1)
	}
}

// release noises the histogram before the sink sees it.
func release(req *request, src *rng.Source) {
	emit(noise(req.Counts, req.Eps, src))
}

// releaseInPlace copies, noises in place, then releases.
func releaseInPlace(req *request, src *rng.Source) {
	buf := make([]float64, len(req.Counts))
	copy(buf, req.Counts)
	noiseInPlace(buf, src)
	emit(buf)
}

// shape releases only metadata of the source-bearing struct: the raw
// content lives in the //lrm:source fields, so Eps reads clean.
//
//lrm:sink return
func shape(req *request) float64 {
	return req.Eps
}
