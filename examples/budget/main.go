// Budget: managing a privacy budget across several releases. A data
// owner holds a total budget ε = 1 and serves three rounds of analyst
// queries over the same histogram, spending part of the budget each time
// under sequential composition. Also shows the advanced-composition
// accounting for many small releases and the exponential mechanism for a
// non-numeric choice.
package main

import (
	"fmt"

	"lrm"
)

func main() {
	x := []float64{120, 340, 560, 230, 90, 410, 280, 150,
		320, 210, 170, 450, 380, 260, 140, 310}

	budget, err := lrm.NewBudget(1.0)
	if err != nil {
		panic(err)
	}
	src := lrm.NewSource(99)

	// Three rounds of batches; each spends a chunk of the total ε.
	rounds := []struct {
		name string
		w    *lrm.Workload
		eps  lrm.Epsilon
	}{
		{"quarterly ranges", lrm.RangeWorkload(4, 16, lrm.NewSource(1)), 0.5},
		{"prefix sums", lrm.PrefixWorkload(16), 0.3},
		{"grand total", lrm.TotalWorkload(16), 0.2},
	}
	for _, r := range rounds {
		if err := budget.Spend(r.eps); err != nil {
			fmt.Printf("%-16s DENIED: %v\n", r.name, err)
			continue
		}
		noisy, err := lrm.AnswerBatch(r.w, x, r.eps, src)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16s ε=%.1f  first answer %.1f (exact %.1f)  remaining ε=%.2f\n",
			r.name, float64(r.eps), noisy[0], r.w.Answer(x)[0], float64(budget.Remaining()))
	}

	// A fourth request must be rejected: the budget is exhausted.
	if err := budget.Spend(0.1); err != nil {
		fmt.Printf("%-16s DENIED: budget exhausted\n", "extra query")
	}

	// Advanced composition: 500 tiny releases at ε=0.005 each cost far
	// less than the basic 2.5 bound.
	epsTotal, delta, err := lrm.AdvancedComposition(0.005, 0, 500, 1e-9)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n500 releases at ε=0.005: basic composition ε=2.50, advanced ε=%.3f (δ=%g)\n",
		float64(epsTotal), delta)

	// Exponential mechanism: privately pick the busiest bucket.
	idx, err := lrm.ExponentialMechanism(x, 1, 0.5, src)
	if err != nil {
		panic(err)
	}
	fmt.Printf("exponential mechanism picked bucket %d as busiest (true max is bucket 2)\n", idx)
}
