// Package lint is the repository's own static-analysis suite: five
// analyzers that turn the invariants the numeric and privacy layers
// depend on — but that ordinary tests only probe pointwise — into
// build-time checks over every path.
//
// The analyzers:
//
//   - aliasguard: in-place mat/sparse kernel calls (MulTo, GramTo,
//     MulColsTo, SolveRightSPDTo, …) must not pass the same variable or
//     field chain as destination and a forbidden operand. The kernels
//     panic on aliasing at runtime; the analyzer catches the obvious
//     cases on paths no test drives.
//   - noalloc: functions annotated //lrm:noalloc must contain no
//     syntactic allocation constructs (make, new, append, map/slice
//     literals, &-composite literals, closures, go statements). The
//     annotation is the static face of the testing.AllocsPerRun pins.
//   - noiserand: math/rand is importable only by internal/rng, and
//     constant noise seeds (rng.New(42), Source.Reseed(7), Seed: 9
//     fields) are forbidden in serving code — a replayable noise stream
//     is a subtractable one, which voids the ε-DP guarantee.
//   - epshygiene: an ε reaching a release sink (Answer, AnswerMany,
//     Prepare, PrepareWith) must be validated earlier in the same
//     function, and (*privacy.Budget).Spend errors must not be
//     discarded.
//   - detiter: in the bit-identity packages (mat, core, engine, plan),
//     map-range bodies must not write positional output or accumulate
//     floating-point state, because map iteration order is randomized
//     per execution.
//
// Findings are suppressed case by case with
//
//	//lint:ignore <analyzer> <justification>
//
// on or directly above the flagged line; the justification is
// mandatory, and a malformed directive is itself a finding.
//
// The framework (Analyzer, Pass, Diagnostic, Run) is a deliberate
// stdlib-only subset of golang.org/x/tools/go/analysis: packages are
// loaded through `go list -export` plus the gc importer, so the suite
// needs no dependencies beyond the toolchain and can migrate onto the
// real multichecker wholesale if the dependency ever lands. The
// cmd/lrmlint binary drives the suite; fixture packages under
// testdata/src exercise every analyzer with want-annotated positives
// and clean negatives.
package lint
