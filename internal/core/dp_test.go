package core

import (
	"math"
	"testing"

	"lrm/internal/rng"
	"lrm/internal/workload"
)

// TestMechanismSatisfiesDPEmpirically is a statistical differential-
// privacy check: for neighboring databases x and x′ = x + e_j (worst-case
// j), the probability of any event may differ by at most a factor e^ε.
// We estimate P(answer_0 ≥ threshold) under both inputs and verify the
// empirical ratio respects the bound with sampling slack. A sensitivity
// mis-calibration in the decomposition (e.g. Δ(L) computed on rows
// instead of columns) makes this test fail loudly.
func TestMechanismSatisfiesDPEmpirically(t *testing.T) {
	w := workload.Range(6, 10, rng.New(1))
	d, err := Decompose(w.W, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMechanism(d)
	if err != nil {
		t.Fatal(err)
	}

	const eps = 1.0
	x := rng.New(2).UniformVec(10, 20, 60)
	// Worst-case neighbor: bump the domain position with the largest
	// column L1 norm in L (the sensitivity-attaining coordinate).
	worst := 0
	var worstSum float64
	for j := 0; j < d.L.Cols(); j++ {
		var s float64
		for i := 0; i < d.L.Rows(); i++ {
			s += math.Abs(d.L.At(i, j))
		}
		if s > worstSum {
			worstSum = s
			worst = j
		}
	}
	x2 := append([]float64(nil), x...)
	x2[worst]++

	exact0 := w.Answer(x)[0]
	threshold := exact0 + 1 // an event with substantial mass under both

	const trials = 120_000
	count := func(data []float64, src *rng.Source) float64 {
		hits := 0
		for i := 0; i < trials; i++ {
			out, err := m.Answer(data, eps, src)
			if err != nil {
				t.Fatal(err)
			}
			if out[0] >= threshold {
				hits++
			}
		}
		return float64(hits) / trials
	}
	p1 := count(x, rng.New(3))
	p2 := count(x2, rng.New(4))
	if p1 < 0.05 || p2 < 0.05 {
		t.Fatalf("event probabilities too small for a meaningful test: %v, %v", p1, p2)
	}
	bound := math.Exp(eps)
	const slack = 1.10 // Monte-Carlo slack
	if p1 > bound*p2*slack || p2 > bound*p1*slack {
		t.Fatalf("likelihood ratio violated: p1=%v p2=%v bound=e^ε=%v", p1, p2, bound)
	}
}

// TestMechanismDPBoundIsTight checks the complementary direction: with a
// deliberately *undersized* noise scale the ratio bound must break. This
// guards the test above against being vacuously loose.
func TestMechanismDPBoundIsTight(t *testing.T) {
	// Simulate a mis-calibrated mechanism by answering with ε′ = 6 but
	// auditing against ε = 1: the ratio should clearly exceed e^1.
	w := workload.Total(4)
	d, err := Decompose(w.W, Options{Rank: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMechanism(d)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{10, 10, 10, 10}
	x2 := []float64{11, 10, 10, 10}
	exact := w.Answer(x)[0]
	const trials = 120_000
	count := func(data []float64, src *rng.Source) float64 {
		hits := 0
		for i := 0; i < trials; i++ {
			out, err := m.Answer(data, 6, src) // six times less noise
			if err != nil {
				t.Fatal(err)
			}
			if out[0] >= exact+0.5 {
				hits++
			}
		}
		return float64(hits) / trials
	}
	p1 := count(x, rng.New(5))
	p2 := count(x2, rng.New(6))
	ratio := p2 / p1
	if ratio < math.Exp(1) {
		t.Fatalf("audit not discriminative: ratio %v under mis-calibration", ratio)
	}
}
