package privacy

import (
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"lrm/internal/faultfs"
)

func openTestAccountant(t *testing.T, opts AccountantOptions) *Accountant {
	t.Helper()
	a, err := OpenAccountant(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func walPath(dir, tenant string) string {
	return filepath.Join(dir, hex.EncodeToString([]byte(tenant))+".wal")
}

// TestAccountantMemoryMode: with no directory the accountant is a plain
// per-tenant budget map — same admission semantics, no durability.
func TestAccountantMemoryMode(t *testing.T) {
	a := openTestAccountant(t, AccountantOptions{
		DefaultTotal: 1.0,
		Totals:       map[string]Epsilon{"vip": 2.0},
	})
	if err := a.Spend("alice", 0.6); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("alice", 0.6); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("overspend = %v, want ErrBudgetExhausted", err)
	}
	// Different tenants do not share budget; the per-tenant override
	// applies.
	if err := a.Spend("vip", 1.5); err != nil {
		t.Fatal(err)
	}
	if got := float64(a.Remaining("vip")); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("vip remaining %v, want 0.5", got)
	}
}

// TestAccountantUnknownTenant: with no default, unlisted tenants are
// rejected before anything is logged.
func TestAccountantUnknownTenant(t *testing.T) {
	a := openTestAccountant(t, AccountantOptions{Totals: map[string]Epsilon{"a": 1}})
	if err := a.Spend("stranger", 0.1); err == nil {
		t.Fatal("unknown tenant spend succeeded, want an error")
	}
}

// TestAccountantDurableReplay: spends survive Close and re-open — the
// restarted accountant refuses what the previous life already consumed.
func TestAccountantDurableReplay(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAccountant(AccountantOptions{Dir: dir, DefaultTotal: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := a.Spend("alice", 0.3); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	b := openTestAccountant(t, AccountantOptions{Dir: dir, DefaultTotal: 1.0})
	if got := float64(b.Spent("alice")); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("replayed spent %v, want 0.9", got)
	}
	if err := b.Spend("alice", 0.3); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("post-restart overspend = %v, want ErrBudgetExhausted", err)
	}
	if err := b.Spend("alice", 0.1); err != nil {
		t.Fatalf("post-restart legitimate spend: %v", err)
	}
}

// TestAccountantClosed: Close is idempotent and everything after it is
// refused with the sentinel.
func TestAccountantClosed(t *testing.T) {
	a, err := OpenAccountant(AccountantOptions{Dir: t.TempDir(), DefaultTotal: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("alice", 0.1); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if err := a.Spend("alice", 0.1); !errors.Is(err, ErrAccountantClosed) {
		t.Fatalf("spend after Close = %v, want ErrAccountantClosed", err)
	}
}

// TestAccountantConcurrentSpend mirrors the Budget exactly-20-grants
// hammer against one durable tenant: no interleaving of goroutines may
// admit more than total/eps spends, and with -race the WAL append path
// is pinned data-race-free.
func TestAccountantConcurrentSpend(t *testing.T) {
	const (
		goroutines = 32
		perG       = 25
		eps        = Epsilon(0.05)
	)
	dir := t.TempDir()
	a := openTestAccountant(t, AccountantOptions{Dir: dir, DefaultTotal: 1.0})
	var wg sync.WaitGroup
	granted := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := a.Spend("alice", eps); err == nil {
					granted[g]++
				}
				a.Remaining("alice") // concurrent readers
				a.Tenants()
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range granted {
		total += n
	}
	if total != 20 {
		t.Fatalf("granted %d spends of %v against total 1.0, want exactly 20", total, float64(eps))
	}
	// The durable record agrees with the in-memory grant count.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	b := openTestAccountant(t, AccountantOptions{Dir: dir, DefaultTotal: 1.0})
	if got := float64(b.Spent("alice")); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("replayed spent %v, want 1.0", got)
	}
}

// TestWALReplayEveryBoundary replays the log truncated at every byte
// offset — the complete space of crash-truncation states. Every prefix
// must replay without error to exactly the ε of its complete records:
// grants only follow durable appends, so a record lost to truncation is
// a grant that never happened.
func TestWALReplayEveryBoundary(t *testing.T) {
	const spends = 5
	dir := t.TempDir()
	a, err := OpenAccountant(AccountantOptions{Dir: dir, DefaultTotal: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < spends; i++ {
		if err := a.Spend("alice", Epsilon(0.01*float64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(walPath(dir, "alice"))
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != spends*walRecordSize {
		t.Fatalf("wal is %d bytes, want %d", len(full), spends*walRecordSize)
	}
	for cut := 0; cut <= len(full); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(walPath(sub, "alice"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		b, err := OpenAccountant(AccountantOptions{Dir: sub, DefaultTotal: 1.0})
		if err != nil {
			t.Fatalf("cut at byte %d: open: %v", cut, err)
		}
		want := 0.0
		for i := 0; i < cut/walRecordSize; i++ {
			want += 0.01 * float64(i+1)
		}
		if got := float64(b.Spent("alice")); math.Abs(got-want) > 1e-9 {
			t.Fatalf("cut at byte %d: spent %v, want %v", cut, got, want)
		}
		b.Close()
	}
}

// TestWALMidFileCorruptionFailsClosed: a flipped byte with valid
// records after it is not a torn tail — the history is untrustworthy
// and the open must refuse to admit spends against it.
func TestWALMidFileCorruptionFailsClosed(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAccountant(AccountantOptions{Dir: dir, DefaultTotal: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := a.Spend("alice", 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	path := walPath(dir, "alice")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[walRecordSize/2] ^= 0xff // inside record 0, two valid records follow
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAccountant(AccountantOptions{Dir: dir, DefaultTotal: 1.0}); err == nil {
		t.Fatal("open over mid-file corruption succeeded, want an error")
	}
}

// TestAccountantKillBetweenAppendAndGrant: a record that became durable
// without its grant being issued (the crash window inside Spend) is
// charged on replay — the over-count half of the contract.
func TestAccountantKillBetweenAppendAndGrant(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAccountant(AccountantOptions{Dir: dir, DefaultTotal: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("alice", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: the append hit the platter, the grant did not.
	f, err := os.OpenFile(walPath(dir, "alice"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(appendWALRecord(nil, walDelta, 0.25)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b := openTestAccountant(t, AccountantOptions{Dir: dir, DefaultTotal: 1.0})
	if got := float64(b.Spent("alice")); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("replayed spent %v, want the over-counted 0.5", got)
	}
}

// TestAccountantCompaction: past CompactEvery the log collapses to a
// snapshot record plus the uncompacted tail, and replay is unchanged.
func TestAccountantCompaction(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAccountant(AccountantOptions{Dir: dir, DefaultTotal: 1.0, CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	const spends = 10
	for i := 0; i < spends; i++ {
		if err := a.Spend("alice", 0.01); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(walPath(dir, "alice"))
	if err != nil {
		t.Fatal(err)
	}
	// Compactions at spends 4 and 8 leave a snapshot + 2 deltas.
	if want := int64(3 * walRecordSize); info.Size() != want {
		t.Fatalf("compacted wal is %d bytes, want %d", info.Size(), want)
	}
	b := openTestAccountant(t, AccountantOptions{Dir: dir, DefaultTotal: 1.0})
	if got := float64(b.Spent("alice")); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("replayed spent %v, want 0.1", got)
	}
}

// TestAccountantTenantsSnapshot: the status list covers replayed and
// live tenants, sorted, with remaining clamped at zero.
func TestAccountantTenantsSnapshot(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAccountant(AccountantOptions{Dir: dir, DefaultTotal: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("zoe", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("abe", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	b := openTestAccountant(t, AccountantOptions{Dir: dir, DefaultTotal: 1.0})
	ts := b.Tenants()
	if len(ts) != 2 || ts[0].Tenant != "abe" || ts[1].Tenant != "zoe" {
		t.Fatalf("tenants = %+v, want [abe zoe]", ts)
	}
	if math.Abs(ts[1].Remaining-0.5) > 1e-9 {
		t.Fatalf("zoe remaining %v, want 0.5", ts[1].Remaining)
	}
}

// TestAccountantCrashRecovery is the crash-point sweep the tentpole
// demands: a spend scenario (appends, fsyncs, a compaction's temp +
// rename + dir sync) is run against every injectable failure point, in
// both clean-truncation and torn-tail mode, and after every crash the
// re-opened accountant must report spent ε ≥ what was actually granted
// — over-counted at worst, never refunded.
func TestAccountantCrashRecovery(t *testing.T) {
	const (
		spends = 6
		eps    = 0.1
	)
	base := t.TempDir()
	run := 0
	var granted int
	scenario := func(fs faultfs.FS) error {
		dir := filepath.Join(base, fmt.Sprintf("run%d", run))
		run++
		granted = 0
		a, err := OpenAccountant(AccountantOptions{
			Dir: dir, FS: fs, DefaultTotal: 1.0, CompactEvery: 3,
		})
		if err != nil {
			return err
		}
		for i := 0; i < spends; i++ {
			if err := a.Spend("alice", eps); err != nil {
				return err
			}
			granted++
		}
		return a.Close()
	}
	lastDir := func() string { return filepath.Join(base, fmt.Sprintf("run%d", run-1)) }

	points, err := faultfs.Points(scenario)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 10 {
		t.Fatalf("only %d failure points enumerated; the scenario should hit writes, syncs, creates, and a rename", len(points))
	}
	for _, torn := range []bool{false, true} {
		for _, pt := range points {
			inj := faultfs.New(pt.Faults(torn))
			err := scenario(inj)
			if !inj.Tripped() {
				if err != nil {
					t.Fatalf("point %s (torn=%v): untripped run failed: %v", pt, torn, err)
				}
				continue
			}
			// The process died at the failure point. Recovery through the
			// real disk must see everything that was granted.
			a, err := OpenAccountant(AccountantOptions{Dir: lastDir(), DefaultTotal: 1.0})
			if err != nil {
				t.Fatalf("point %s (torn=%v): recovery open: %v", pt, torn, err)
			}
			got := float64(a.Spent("alice"))
			want := eps * float64(granted)
			if got < want-1e-9 {
				t.Fatalf("point %s (torn=%v): recovered spent %v < granted %v — a crash refunded ε", pt, torn, got, want)
			}
			if got > want+eps+1e-9 {
				t.Fatalf("point %s (torn=%v): recovered spent %v overshoots granted %v by more than one record", pt, torn, got, want)
			}
			a.Close()
		}
	}
}
