package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"lrm/internal/mat"
	"lrm/internal/rng"
)

// randomDense returns an r×c dense matrix with roughly density·r·c
// non-zero standard-normal entries.
func randomDense(r, c int, density float64, src *rng.Source) *mat.Dense {
	d := mat.New(r, c)
	for i := 0; i < r; i++ {
		row := d.RawRow(i)
		for j := range row {
			if src.Float64() < density {
				row[j] = src.Normal()
			}
		}
	}
	return d
}

func TestFromDenseRoundTrip(t *testing.T) {
	src := rng.New(1)
	for _, dims := range [][2]int{{1, 1}, {3, 7}, {16, 16}, {20, 5}, {5, 20}} {
		d := randomDense(dims[0], dims[1], 0.3, src)
		a := FromDense(d, 0)
		if !a.ToDense().Equal(d) {
			t.Fatalf("round trip mismatch for %dx%d", dims[0], dims[1])
		}
	}
}

func TestFromDenseTolerance(t *testing.T) {
	d := mat.FromRows([][]float64{{1e-12, 1}, {-1e-12, 2}})
	a := FromDense(d, 1e-9)
	if a.NNZ() != 2 {
		t.Fatalf("tolerance should drop tiny entries: nnz=%d", a.NNZ())
	}
	if a.At(0, 1) != 1 || a.At(1, 1) != 2 {
		t.Fatal("kept entries wrong")
	}
	if a.At(0, 0) != 0 {
		t.Fatal("dropped entry should read as zero")
	}
}

func TestFromTriplets(t *testing.T) {
	a, err := FromTriplets(3, 4, []Triplet{
		{Row: 2, Col: 3, Val: 5},
		{Row: 0, Col: 1, Val: 2},
		{Row: 0, Col: 1, Val: 3}, // duplicate: summed
		{Row: 1, Col: 2, Val: 1},
		{Row: 1, Col: 0, Val: -1},
		{Row: 2, Col: 0, Val: 4},
		{Row: 2, Col: 2, Val: 0}, // explicit zero: dropped
	})
	if err != nil {
		t.Fatal(err)
	}
	want := mat.FromRows([][]float64{
		{0, 5, 0, 0},
		{-1, 0, 1, 0},
		{4, 0, 0, 5},
	})
	if !a.ToDense().Equal(want) {
		t.Fatalf("got\n%v\nwant\n%v", a.ToDense(), want)
	}
	if a.NNZ() != 5 {
		t.Fatalf("nnz=%d want 5", a.NNZ())
	}
}

func TestFromTripletsOutOfRange(t *testing.T) {
	if _, err := FromTriplets(2, 2, []Triplet{{Row: 2, Col: 0, Val: 1}}); err == nil {
		t.Fatal("want error for out-of-range row")
	}
	if _, err := FromTriplets(2, 2, []Triplet{{Row: 0, Col: -1, Val: 1}}); err == nil {
		t.Fatal("want error for negative col")
	}
	if _, err := FromTriplets(-1, 2, nil); err == nil {
		t.Fatal("want error for negative dims")
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	src := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		r := 1 + src.Intn(30)
		c := 1 + src.Intn(30)
		d := randomDense(r, c, 0.25, src)
		a := FromDense(d, 0)
		x := src.NormalVec(c, 1)
		got := a.MulVec(x)
		want := mat.MulVec(d, x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d: MulVec[%d]=%g want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMulVecTMatchesDense(t *testing.T) {
	src := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		r := 1 + src.Intn(30)
		c := 1 + src.Intn(30)
		d := randomDense(r, c, 0.25, src)
		a := FromDense(d, 0)
		x := src.NormalVec(r, 1)
		got := a.MulVecT(x)
		want := mat.MulVec(d.T(), x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d: MulVecT[%d]=%g want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMulDenseMatchesDense(t *testing.T) {
	src := rng.New(4)
	a := randomDense(9, 13, 0.3, src)
	b := randomDense(13, 6, 1.0, src)
	got := FromDense(a, 0).MulDense(b)
	want := mat.Mul(a, b)
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("MulDense disagrees with dense product")
	}
}

// TestMulDenseTo checks the in-place variant against MulDense with a
// garbage-filled destination, that the serial and pool-parallel row
// partitions agree bit-for-bit, and that an aliased destination panics.
func TestMulDenseTo(t *testing.T) {
	src := rng.New(14)
	ad := randomDense(37, 23, 0.3, src)
	b := randomDense(23, 29, 1.0, src)
	a := FromDense(ad, 0)
	want := a.MulDense(b)

	dst := mat.New(37, 29)
	for i := range dst.RawData() {
		dst.RawData()[i] = math.Inf(1)
	}
	if got := a.MulDenseTo(dst, b); !got.Equal(want) {
		t.Fatal("MulDenseTo disagrees with MulDense")
	}

	// Row-parallel path (a dense operand wide enough that nnz·cols
	// clears the pool cutoff): each output row is accumulated by one
	// goroutine in stored-entry order, so the result must match the
	// serial row loop bit-for-bit.
	aFull := FromDense(randomDense(37, 23, 1.0, src), 0)
	bigB := randomDense(23, 4096, 1.0, src)
	serial := mat.New(37, 4096)
	aFull.mulDenseRows(serial, bigB, 0, aFull.Rows())
	if aFull.NNZ()*bigB.Cols() < mulDenseParallelWork {
		t.Fatalf("test operand too small to force the parallel path: %d", aFull.NNZ()*bigB.Cols())
	}
	if got := aFull.MulDenseTo(mat.New(37, 4096), bigB); !got.Equal(serial) {
		t.Fatal("parallel MulDenseTo disagrees with serial row loop")
	}

	// Partially overlapping storage (distinct first elements) must panic
	// too — a first-element-only check would let this corrupt silently.
	defer func() {
		if recover() == nil {
			t.Error("MulDenseTo with partially overlapping destination did not panic")
		}
	}()
	backing := make([]float64, 23*23+23)
	full := mat.NewFromData(23, 23, backing[:23*23])
	shifted := mat.NewFromData(23, 23, backing[23:])
	aSq := FromDense(randomDense(23, 23, 0.4, src), 0)
	aSq.MulDenseTo(shifted, full)
}

func TestTranspose(t *testing.T) {
	src := rng.New(5)
	d := randomDense(11, 17, 0.2, src)
	a := FromDense(d, 0)
	if !a.T().ToDense().Equal(d.T()) {
		t.Fatal("transpose mismatch")
	}
	// (Aᵀ)ᵀ = A.
	if !a.T().T().ToDense().Equal(d) {
		t.Fatal("double transpose mismatch")
	}
}

func TestTransposeProperty(t *testing.T) {
	// Property: for random sparse A and vectors x, y: yᵀ(Ax) = (Aᵀy)ᵀx.
	src := rng.New(6)
	f := func(seed int64) bool {
		s := rng.New(seed)
		r := 1 + s.Intn(20)
		c := 1 + s.Intn(20)
		a := FromDense(randomDense(r, c, 0.3, s), 0)
		x := s.NormalVec(c, 1)
		y := s.NormalVec(r, 1)
		ax := a.MulVec(x)
		aty := a.MulVecT(y)
		var lhs, rhs float64
		for i := range y {
			lhs += y[i] * ax[i]
		}
		for j := range x {
			rhs += aty[j] * x[j]
		}
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(lhs))
	}
	cfg := &quick.Config{MaxCount: 50, Values: nil}
	_ = src
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNorms(t *testing.T) {
	d := mat.FromRows([][]float64{
		{1, -2, 0},
		{0, 3, -4},
	})
	a := FromDense(d, 0)
	if got := a.MaxColAbsSum(); got != 5 {
		t.Fatalf("MaxColAbsSum=%g want 5", got)
	}
	if got := a.SquaredSum(); got != 1+4+9+16 {
		t.Fatalf("SquaredSum=%g want 30", got)
	}
	if got := a.FrobeniusNorm(); math.Abs(got-math.Sqrt(30)) > 1e-15 {
		t.Fatalf("FrobeniusNorm=%g", got)
	}
}

func TestIdentity(t *testing.T) {
	a := Identity(5)
	if !a.ToDense().Equal(mat.Eye(5)) {
		t.Fatal("Identity mismatch")
	}
	x := []float64{1, 2, 3, 4, 5}
	y := a.MulVec(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("identity MulVec changed vector")
		}
	}
}

func TestScale(t *testing.T) {
	d := mat.FromRows([][]float64{{1, 0}, {0, -2}})
	a := FromDense(d, 0).Scale(3)
	want := mat.FromRows([][]float64{{3, 0}, {0, -6}})
	if !a.ToDense().Equal(want) {
		t.Fatal("Scale mismatch")
	}
}

func TestRowAccessors(t *testing.T) {
	d := mat.FromRows([][]float64{{0, 7, 0, 8}, {0, 0, 0, 0}})
	a := FromDense(d, 0)
	if a.RowNNZ(0) != 2 || a.RowNNZ(1) != 0 {
		t.Fatal("RowNNZ wrong")
	}
	var cols []int
	var vals []float64
	a.Range(0, func(j int, v float64) {
		cols = append(cols, j)
		vals = append(vals, v)
	})
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 || vals[0] != 7 || vals[1] != 8 {
		t.Fatalf("Range visited %v %v", cols, vals)
	}
	if a.Density() != 2.0/8.0 {
		t.Fatalf("Density=%g", a.Density())
	}
}

func TestIsFinite(t *testing.T) {
	a := FromDense(mat.FromRows([][]float64{{1, 2}}), 0)
	if !a.IsFinite() {
		t.Fatal("finite matrix reported non-finite")
	}
	b, err := FromTriplets(1, 2, []Triplet{{Row: 0, Col: 0, Val: math.NaN()}})
	if err != nil {
		t.Fatal(err)
	}
	if b.IsFinite() {
		t.Fatal("NaN matrix reported finite")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	a := Identity(2)
	assertPanics(t, func() { a.At(2, 0) })
	assertPanics(t, func() { a.At(0, -1) })
	assertPanics(t, func() { a.MulVec([]float64{1}) })
	assertPanics(t, func() { a.MulVecT([]float64{1, 2, 3}) })
	assertPanics(t, func() { a.RowNNZ(5) })
	assertPanics(t, func() { a.Range(-1, func(int, float64) {}) })
}

func TestBuilder(t *testing.T) {
	b := NewBuilder(5)
	b.Append(1, 2)
	b.Append(4, -1)
	b.EndRow()
	b.EndRow() // empty row
	b.AppendRange(0, 3, 1)
	b.EndRow()
	a := b.Build()
	want := mat.FromRows([][]float64{
		{0, 2, 0, 0, -1},
		{0, 0, 0, 0, 0},
		{1, 1, 1, 0, 0},
	})
	if !a.ToDense().Equal(want) {
		t.Fatalf("builder result mismatch:\n%v", a.ToDense())
	}
}

func TestBuilderPanics(t *testing.T) {
	assertPanics(t, func() { NewBuilder(-1) })
	b := NewBuilder(3)
	b.Append(1, 1)
	assertPanics(t, func() { b.Append(1, 2) }) // non-increasing column
	assertPanics(t, func() { b.Append(0, 2) })
	assertPanics(t, func() { b.Append(3, 2) }) // out of range
	assertPanics(t, func() { b.AppendRange(2, 1, 1) })
}

func TestBuilderDropsZeros(t *testing.T) {
	b := NewBuilder(3)
	b.Append(0, 0)
	b.Append(2, 1)
	b.EndRow()
	a := b.Build()
	if a.NNZ() != 1 {
		t.Fatalf("nnz=%d want 1", a.NNZ())
	}
}

func TestEmptyMatrix(t *testing.T) {
	var a CSR
	if a.Rows() != 0 || a.Cols() != 0 || a.NNZ() != 0 || a.Density() != 0 {
		t.Fatal("zero value not empty")
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
