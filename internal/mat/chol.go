package mat

import (
	"errors"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization is attempted on a
// matrix that is not symmetric positive definite.
var ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")

// Cholesky holds the lower-triangular factor of A = L·Lᵀ.
type Cholesky struct {
	l *Dense
}

// FactorCholesky computes the Cholesky factorization of a symmetric
// positive definite matrix. Only the lower triangle of a is read.
func FactorCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, errors.New("mat: FactorCholesky needs a square matrix")
	}
	n := a.rows
	l := New(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.data[j*n+j]
		lrowj := l.RawRow(j)
		for k := 0; k < j; k++ {
			d -= lrowj[k] * lrowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		ljj := math.Sqrt(d)
		lrowj[j] = ljj
		inv := 1 / ljj
		for i := j + 1; i < n; i++ {
			lrowi := l.RawRow(i)
			s := a.data[i*n+j]
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			lrowi[j] = s * inv
		}
	}
	return &Cholesky{l: l}, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }

// SolveVec solves A·x = b using the factorization.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	n := c.l.rows
	if len(b) != n {
		return nil, errors.New("mat: Cholesky SolveVec length mismatch")
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := c.l.RawRow(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.data[k*n+i] * x[k]
		}
		x[i] = s / c.l.data[i*n+i]
	}
	return x, nil
}

// Solve solves A·X = B using the factorization.
func (c *Cholesky) Solve(b *Dense) (*Dense, error) {
	n := c.l.rows
	if b.rows != n {
		return nil, errors.New("mat: Cholesky Solve dimension mismatch")
	}
	x := New(n, b.cols)
	for j := 0; j < b.cols; j++ {
		col, err := c.SolveVec(b.Col(j))
		if err != nil {
			return nil, err
		}
		x.SetCol(j, col)
	}
	return x, nil
}

// SolveSPD solves A·X = B for symmetric positive definite A.
func SolveSPD(a, b *Dense) (*Dense, error) {
	c, err := FactorCholesky(a)
	if err != nil {
		return nil, err
	}
	return c.Solve(b)
}

// SolveRightSPD solves X·A = B for symmetric positive definite A, i.e.
// X = B·A⁻¹, by solving Aᵀ·Xᵀ = Bᵀ and exploiting A's symmetry. It is
// the operation needed by the paper's closed-form B-update (Eq. 9).
func SolveRightSPD(b, a *Dense) (*Dense, error) {
	c, err := FactorCholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	if b.cols != n {
		return nil, errors.New("mat: SolveRightSPD dimension mismatch")
	}
	out := New(b.rows, n)
	for i := 0; i < b.rows; i++ {
		row, err := c.SolveVec(b.RawRow(i))
		if err != nil {
			return nil, err
		}
		copy(out.RawRow(i), row)
	}
	return out, nil
}
