// Command lrmbench regenerates the paper's tables and figures.
//
// Usage:
//
//	lrmbench -fig 4                       # one figure, light grid
//	lrmbench -fig all -scale paper        # the full evaluation
//	lrmbench -fig 5 -dataset nettrace -csv out.csv
//	lrmbench -params                      # print Table 1
//	lrmbench -json BENCH_ci.json          # perf-trajectory artifact
//	lrmbench -compare old.json new.json -tol 0.30
//	                                      # CI perf gate: fail if a tier-1
//	                                      # kernel regressed beyond -tol
//
// Each run prints the same rows/series the paper plots: average squared
// error per (mechanism, swept parameter value, ε), plus strategy
// preparation time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"lrm/internal/experiments"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 2-9 or 'all'")
		scale    = flag.String("scale", "light", "grid size: bench, light or paper")
		trials   = flag.Int("trials", 0, "randomized executions per point (0 = scale default)")
		seed     = flag.Int64("seed", 1, "random seed")
		ds       = flag.String("dataset", "", "restrict to one dataset: searchlogs, nettrace, socialnetwork")
		csvPath  = flag.String("csv", "", "also write rows as CSV to this file")
		params   = flag.Bool("params", false, "print Table 1 (the parameter grid) and exit")
		jsonOut  = flag.String("json", "", "run the perf-trajectory suite and write BENCH JSON to this path, then exit")
		compare  = flag.Bool("compare", false, "compare two BENCH JSON files (old new) and fail on tier-1 regressions beyond -tol")
		tol      = flag.Float64("tol", 0.30, "relative ns/op slowdown tolerated by -compare (0.30 = 30%)")
		ablation = flag.Bool("ablation", false, "run the optimizer ablation suite instead of figures")
		synopses = flag.Bool("synopses", false, "run the extension table: data-synopsis mechanisms (FPA/CM/NF/SF) vs LM/LRM")
	)
	flag.Parse()

	if *compare {
		// Accept flags after the positional paths too (the documented
		// "lrmbench -compare old.json new.json -tol 0.30" shape): the
		// stdlib parser stops at the first positional, so re-parse the
		// remainder, interleaving paths and flags.
		fs := flag.NewFlagSet("compare", flag.ExitOnError)
		fs.Float64Var(tol, "tol", *tol, "relative ns/op slowdown tolerated (0.30 = 30%)")
		var paths []string
		args := flag.Args()
		for len(args) > 0 {
			if strings.HasPrefix(args[0], "-") {
				if err := fs.Parse(args); err != nil {
					fatalf("%v", err)
				}
				args = fs.Args()
				continue
			}
			paths = append(paths, args[0])
			args = args[1:]
		}
		if len(paths) != 2 {
			fatalf("-compare needs exactly two arguments: old.json new.json")
		}
		if err := compareBenchFiles(os.Stdout, paths[0], paths[1], *tol); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *jsonOut != "" {
		if err := writeBenchJSON(*jsonOut); err != nil {
			fatalf("bench json: %v", err)
		}
		return
	}

	cfg := experiments.Config{Trials: *trials, Seed: *seed, Dataset: *ds}
	switch *scale {
	case "bench":
		cfg.Scale = experiments.ScaleBench
	case "light":
		cfg.Scale = experiments.ScaleLight
	case "paper":
		cfg.Scale = experiments.ScalePaper
	default:
		fatalf("unknown -scale %q (want bench, light or paper)", *scale)
	}

	if *params {
		fmt.Print(experiments.DefaultParams(cfg))
		return
	}
	if *ablation || *synopses {
		var rows []experiments.Row
		var err error
		if *ablation {
			rows, err = experiments.Ablations(cfg)
		} else {
			rows, err = experiments.Synopses(cfg)
		}
		if err != nil {
			fatalf("extras: %v", err)
		}
		if err := experiments.WriteTable(os.Stdout, rows); err != nil {
			fatalf("writing table: %v", err)
		}
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				fatalf("creating %s: %v", *csvPath, err)
			}
			defer f.Close()
			if err := experiments.WriteCSV(f, rows); err != nil {
				fatalf("writing csv: %v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
		}
		return
	}

	figures := experiments.Figures()
	if *fig != "all" {
		n, err := strconv.Atoi(*fig)
		if err != nil {
			fatalf("bad -fig %q: %v", *fig, err)
		}
		figures = []int{n}
	}

	var all []experiments.Row
	for _, f := range figures {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running Figure %d (scale=%s)...\n", f, cfg.Scale)
		rows, err := experiments.Run(f, cfg)
		if err != nil {
			fatalf("figure %d: %v", f, err)
		}
		fmt.Fprintf(os.Stderr, "figure %d: %d rows in %.1fs\n", f, len(rows), time.Since(start).Seconds())
		all = append(all, rows...)
	}

	if err := experiments.WriteTable(os.Stdout, all); err != nil {
		fatalf("writing table: %v", err)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatalf("creating %s: %v", *csvPath, err)
		}
		defer f.Close()
		if err := experiments.WriteCSV(f, all); err != nil {
			fatalf("writing csv: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lrmbench: "+format+"\n", args...)
	os.Exit(1)
}
