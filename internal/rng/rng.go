// Package rng provides the reproducible randomness used throughout the
// repository: a seeded source plus the samplers the paper's mechanisms and
// workload/dataset generators need (Laplace, Gaussian, uniform, Zipf).
//
// All experiment code threads an explicit *Source so every figure can be
// regenerated bit-for-bit from its seed.
package rng

import (
	"math"
	"math/rand"
)

// Source wraps math/rand with the distribution samplers used by the
// mechanisms. It is not safe for concurrent use; use Split to hand
// independent sources to goroutines.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split returns a new Source whose stream is independent of s's future
// output (seeded from s). Useful for parallel trials.
func (s *Source) Split() *Source {
	return New(s.r.Int63())
}

// Reseed resets s to the stream New(seed) would produce, letting pooled
// sources be reused without allocating (hot answering paths reseed a
// pooled Source per request instead of constructing one).
func (s *Source) Reseed(seed int64) {
	s.r.Seed(seed)
}

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform int in [0,n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Normal returns a standard normal sample.
func (s *Source) Normal() float64 { return s.r.NormFloat64() }

// Laplace returns a sample from the zero-mean Laplace distribution with
// scale b (density 1/(2b)·exp(−|x|/b), variance 2b²). Sampling is by
// inverse CDF: x = −b·sign(u)·ln(1−2|u|) for u uniform in (−1/2, 1/2).
func (s *Source) Laplace(b float64) float64 {
	if b < 0 {
		panic("rng: negative Laplace scale")
	}
	if b == 0 {
		return 0
	}
	u := s.r.Float64() - 0.5
	if u >= 0 {
		return -b * math.Log(1-2*u)
	}
	return b * math.Log(1+2*u)
}

// LaplaceVec returns n i.i.d. Laplace(b) samples.
func (s *Source) LaplaceVec(n int, b float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Laplace(b)
	}
	return out
}

// NormalVec returns n i.i.d. N(0, sigma²) samples.
func (s *Source) NormalVec(n int, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.r.NormFloat64() * sigma
	}
	return out
}

// UniformVec returns n i.i.d. uniform samples in [lo, hi).
func (s *Source) UniformVec(n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + s.r.Float64()*(hi-lo)
	}
	return out
}

// Exponential returns a sample from Exp(1)·scale.
func (s *Source) Exponential(scale float64) float64 {
	return s.r.ExpFloat64() * scale
}

// Pareto returns a sample from a Pareto distribution with minimum xm and
// shape alpha (heavy-tailed; used by the Net Trace synthesizer).
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a Poisson(lambda) sample. Knuth's method is used for
// small lambda and a normal approximation above 500 (adequate for data
// synthesis).
func (s *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 500 {
		v := lambda + math.Sqrt(lambda)*s.r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf returns a sampler of Zipf-distributed values in [1, n] with
// exponent alpha > 1 is not required; alpha > 0 uses the generalized
// harmonic normalization (used by the Social Network synthesizer).
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent alpha.
func NewZipf(src *Source, n int, alpha float64) *Zipf {
	cdf := make([]float64, n)
	var sum float64
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), alpha)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Sample returns a rank in [1, n].
func (z *Zipf) Sample() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}
