package core

import (
	"bytes"
	"testing"

	"lrm/internal/mat"
)

// FuzzReadDecomposition hammers the untrusted-cache decoder: whatever
// bytes arrive, it must either reject them with an error or return a
// decomposition on which every invariant the answer path assumes
// actually holds. The .lrmd cache directory is the one input surface an
// outside writer can reach, so "no panic, no invalid acceptance" is the
// whole contract.
func FuzzReadDecomposition(f *testing.F) {
	// Seed with a well-formed encoding so the fuzzer starts from valid
	// gob structure, plus truncations and a flipped byte of it.
	d := &Decomposition{
		B:               mat.NewFromData(3, 2, []float64{1, 0, 0, 1, 1, 1}),
		L:               mat.NewFromData(2, 4, []float64{1, 2, 3, 4, 5, 6, 7, 8}),
		Residual:        0.25,
		OuterIterations: 7,
		Converged:       true,
	}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		f.Fatalf("encoding seed: %v", err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	flipped := bytes.Clone(valid)
	flipped[len(flipped)-1] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadDecomposition(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted payloads must satisfy the invariants ReadDecomposition
		// promises to re-establish.
		if got.B == nil || got.L == nil {
			t.Fatal("accepted decomposition with nil factor")
		}
		if got.B.Cols() != got.L.Rows() {
			t.Fatalf("accepted shape mismatch %d vs %d", got.B.Cols(), got.L.Rows())
		}
		if !got.B.IsFinite() || !got.L.IsFinite() {
			t.Fatal("accepted non-finite factor data")
		}
		// The accepted value must be usable: wrapping it as a mechanism
		// exercises the same shape checks the serving path relies on.
		if _, err := NewMechanism(got); err != nil {
			t.Fatalf("accepted decomposition rejected by NewMechanism: %v", err)
		}
		// And it must round-trip: what the decoder accepts, the encoder
		// must reproduce acceptably.
		var rt bytes.Buffer
		if err := got.Encode(&rt); err != nil {
			t.Fatalf("re-encoding accepted decomposition: %v", err)
		}
		if _, err := ReadDecomposition(&rt); err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
	})
}
