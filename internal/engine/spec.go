package engine

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"

	"lrm/internal/core"
	"lrm/internal/mat"
	"lrm/internal/mechanism"
	"lrm/internal/plan"
	"lrm/internal/workload"
)

// Implicit serving (Request.Spec): the spec path is the dense path with
// every matrix-shaped step replaced by its structural twin. Fingerprints
// come from Spec.Digest() (namespaced "spec-…", so the two key spaces
// can share a cache directory and never collide), preparation goes
// through mechanism.PrepareSpec / plan.NewSpec, and the disk artifact
// for an LRM winner is the factored decomposition (.lrmk: one small
// (Bᵢ,Lᵢ) pair per Kronecker factor) instead of a dense .lrmd. Row
// sharding and the pointer memo don't apply — both exist to cope with a
// matrix, and there isn't one.

// specFactorCellCap bounds the per-factor materialization used to
// validate a restored .lrmk against its spec (mirroring loadPrepared's
// residual check, factor by factor).
const specFactorCellCap = 1 << 22

// answerSpec serves one implicit request end to end.
//
//lrm:sink return — everything answerSpec returns leaves the privacy boundary
func (e *Engine) answerSpec(req Request) ([][]float64, error) {
	s := req.Spec
	if s.Queries() <= 0 || s.Domain() <= 0 {
		return nil, errors.New("engine: empty spec")
	}
	if err := validateHistograms(req, s.Domain()); err != nil {
		return nil, err
	}
	e.implicit.Add(1)
	if d, ok := s.(*workload.DenseSpec); ok {
		// The adapter IS the dense path: same fingerprint (the matrix
		// digest, no "spec-" namespace), so adapter and plain-Workload
		// requests share one cache entry, and row sharding still applies.
		req.Workload, req.Spec = d.Dense(), nil
		return e.Answer(req)
	}
	e.requests.Add(1)

	fp := req.Fingerprint
	if fp == "" {
		fp = workload.SpecFingerprint(s)
	}
	p, err := e.preparedWith(fp, func() (mechanism.Prepared, *plan.Plan, error) {
		return e.loadSpec(fp, s)
	})
	if err != nil {
		return nil, err
	}
	return e.release(p, req)
}

// loadSpec produces the Prepared (and Plan, on a plan-aware engine) for
// one spec fingerprint: disk restore first, then a fresh preparation,
// persisted back for the next process.
func (e *Engine) loadSpec(fp string, s workload.Spec) (mechanism.Prepared, *plan.Plan, error) {
	if e.planner != nil {
		return e.loadPlannedSpec(fp, s)
	}
	path := e.specDiskPath(fp)
	if path != "" {
		if p, err := e.loadPreparedKron(path, s, e.gamma); err == nil {
			e.diskHits.Add(1)
			return p, nil, nil
		}
		// A missing, corrupt, or mismatched cache file must never take
		// down serving: fall through to a fresh preparation.
	}
	e.prepares.Add(1)
	if e.hook != nil {
		e.hook(fp)
	}
	p, err := mechanism.PrepareSpec(e.mech, s, nil)
	if err != nil {
		return nil, nil, err
	}
	if path != "" {
		if d, ok := kronDecompositionOf(p); ok {
			if err := e.writeEncoded(path, ".lrmk-*", d); err == nil {
				e.diskWrites.Add(1)
			}
		}
	}
	return p, nil, nil
}

// loadPlannedSpec mirrors loadPlanned for specs: restore the plan
// document and the winner's preparation with zero Prepares, or run
// plan.NewSpec and persist both.
func (e *Engine) loadPlannedSpec(fp string, s workload.Spec) (mechanism.Prepared, *plan.Plan, error) {
	if path := e.planPath(fp); path != "" {
		if p, pl, err := e.restorePlannedSpec(path, fp, s); err == nil {
			e.diskHits.Add(1)
			return p, pl, nil
		}
	}
	opts := *e.planner
	opts.Fingerprint = fp
	e.prepares.Add(1)
	if e.hook != nil {
		e.hook(fp)
	}
	pl, err := plan.NewSpec(s, opts)
	if err != nil {
		return nil, nil, err
	}
	e.planned.Add(1)
	p := pl.Prepared()
	if path := e.planPath(fp); path != "" {
		if err := e.writePlan(path, pl); err == nil {
			if d, ok := kronDecompositionOf(p); ok {
				// Best-effort like every disk write: a failed .lrmk write
				// leaves a valid plan document whose restore path misses on
				// the decomposition and re-plans.
				_ = e.writeEncoded(e.plannedSpecDiskPath(fp, pl.Digest()), ".lrmk-*", d)
			}
			e.diskWrites.Add(1)
		}
	}
	return p, pl, nil
}

// restorePlannedSpec rebuilds a served spec from its persisted plan. A
// baseline winner re-runs only its free PrepareSpec (no ALM, no
// Prepares counter); an lrm winner restores and validates its factored
// decomposition. Zero prepares either way — the acceptance contract of
// the disk cache.
func (e *Engine) restorePlannedSpec(path, fp string, s workload.Spec) (mechanism.Prepared, *plan.Plan, error) {
	f, err := e.fs.Open(path)
	if err != nil {
		return nil, nil, err
	}
	pl, err := plan.Decode(f)
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	if pl.Fingerprint != fp {
		return nil, nil, fmt.Errorf("engine: plan document is for workload %s, not %s", pl.Fingerprint, fp)
	}
	if pl.SpecDesc != s.Describe() {
		// The fingerprint already binds the digest, but the descriptor is
		// the human-auditable form; a mismatch means a tampered document.
		return nil, nil, fmt.Errorf("engine: plan document describes %q, request is %q", pl.SpecDesc, s.Describe())
	}
	if pl.Mechanism == "lrm" {
		p, err := e.loadPreparedKron(e.plannedSpecDiskPath(fp, pl.Digest()), s, pl.LRMOptions.Gamma)
		if err != nil {
			return nil, nil, err
		}
		return p, pl, nil
	}
	m, err := mechanism.ByName(pl.Mechanism, e.planner.Config)
	if err != nil {
		return nil, nil, err
	}
	p, err := mechanism.PrepareSpec(m, s, pl.Stats)
	if err != nil {
		return nil, nil, err
	}
	return p, pl, nil
}

// specDiskPath is the factored-decomposition file for a fixed-mechanism
// engine; "" when disk caching is off. Spec fingerprints are namespaced
// ("spec-…"), so these names can never collide with dense .lrmd keys
// even before the extension differs.
func (e *Engine) specDiskPath(fp string) string {
	if e.dir == "" {
		return ""
	}
	return filepath.Join(e.dir, fp+"-"+e.optTag+".lrmk")
}

// plannedSpecDiskPath is the factored decomposition for a planned lrm
// winner, keyed like plannedDiskPath (fingerprint + planner-options
// digest + plan digest).
func (e *Engine) plannedSpecDiskPath(fp, digest string) string {
	return filepath.Join(e.dir, fp+"-"+e.optTag+"-"+digest+".lrmk")
}

// kronDecomposer is implemented by Prepared instances backed by a
// factored decomposition (the spec-path LRM).
type kronDecomposer interface {
	KronDecomposition() *core.KronDecomposition
}

func kronDecompositionOf(p mechanism.Prepared) (*core.KronDecomposition, bool) {
	d, ok := p.(kronDecomposer)
	if !ok {
		return nil, false
	}
	return d.KronDecomposition(), true
}

// loadPreparedKron restores a persisted factored decomposition and
// checks it actually factors this spec: the spec must be a Kronecker
// product with the same factor count, and each factor's (Bᵢ,Lᵢ) must
// reproduce the materialized factor matrix within its stored residual —
// the per-factor mirror of loadPrepared's dense integrity check. The
// factors are small (specFactorCellCap), so the check costs factor-sized
// GEMMs, never an m×n product.
func (e *Engine) loadPreparedKron(path string, s workload.Spec, gamma float64) (mechanism.Prepared, error) {
	k, ok := s.(*workload.KronSpec)
	if !ok {
		return nil, fmt.Errorf("engine: %s has no factored decomposition to restore", s.Describe())
	}
	f, err := e.fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := core.ReadKronDecomposition(f)
	if err != nil {
		return nil, err
	}
	specs := k.Factors()
	if len(d.Factors) != len(specs) {
		return nil, fmt.Errorf("engine: cached decomposition has %d factors, spec has %d", len(d.Factors), len(specs))
	}
	for i, fd := range d.Factors {
		fs := specs[i]
		fw, err := workload.MaterializeSpec(fs, specFactorCellCap)
		if err != nil {
			return nil, fmt.Errorf("engine: kron factor %d: %w", i+1, err)
		}
		if fd.B.Rows() != fw.Queries() || fd.L.Cols() != fw.Domain() {
			return nil, fmt.Errorf("engine: cached factor %d is %d×%d for a %d×%d factor",
				i+1, fd.B.Rows(), fd.L.Cols(), fw.Queries(), fw.Domain())
		}
		normW := math.Sqrt(mat.SquaredSum(fw.W))
		maxResidual := 0.5 * normW
		if gamma > maxResidual {
			maxResidual = gamma
		}
		frob := math.Sqrt(mat.SquaredSum(mat.Sub(fw.W, mat.Mul(fd.B, fd.L))))
		if frob > fd.Residual+1e-6*normW || fd.Residual > maxResidual*(1+1e-9) {
			return nil, fmt.Errorf("engine: cached factor %d does not factor %s (‖W−BL‖=%.3g, stored %.3g, ‖W‖=%.3g)",
				i+1, fs.Describe(), frob, fd.Residual, normW)
		}
	}
	return mechanism.PreparedFromKronDecomposition(d)
}
